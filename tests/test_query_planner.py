"""The compiled query planner: CSR indexes, equivalence, accounting.

Covers the compiled network index structure, the randomized
planner-equivalence cross-check (compiled results byte-equal to the
Python path across road styles, budgets, kinds, bounds and static_eval
modes), id-native chain integration, the bounded LRU boundary cache,
miss wall-time metering and the degraded-dispatch edge accounting
regression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.forms import CompiledTrackingForm
from repro.geometry import BBox
from repro.mobility import MobilityDomain, grid_city, organic_city
from repro.network import FaultConfig, FaultInjector
from repro.obs import use_registry
from repro.query import (
    LOWER,
    STATIC,
    TRANSIENT,
    UPPER,
    CompiledQueryPlanner,
    QueryEngine,
    RangeQuery,
)
from repro.sampling import CompiledNetworkIndex, sampled_network
from repro.selection import QuadTreeSelector, SensorCandidates
from repro.trajectories import EventColumns, WorkloadConfig, generate_workload


def _deployment(style: str, budget: int, seed: int):
    """A (network, compiled form, workload) triple for cross-checks."""
    rng = np.random.default_rng(seed)
    if style == "grid":
        domain = MobilityDomain(
            grid_city(rows=6, cols=6, jitter=0.0, drop_fraction=0.0)
        )
    else:
        domain = MobilityDomain(organic_city(blocks=50, rng=rng))
    workload = generate_workload(
        domain,
        WorkloadConfig(n_trips=250, horizon_days=1.0, seed=seed + 1),
    )
    columns = EventColumns.from_events(domain, workload.events(domain))
    chosen = QuadTreeSelector().select(
        SensorCandidates.from_domain(domain),
        budget,
        np.random.default_rng(seed + 2),
    )
    network = sampled_network(domain, chosen)
    form = network.build_form(columns)
    assert isinstance(form, CompiledTrackingForm)
    return network, form, workload


@pytest.fixture(scope="module", params=[("grid", 6), ("grid", 12),
                                        ("organic", 8), ("organic", 16)],
                ids=lambda p: f"{p[0]}-{p[1]}")
def deployment(request):
    style, budget = request.param
    return _deployment(style, budget, seed=37)


def _battery(domain, horizon, seed, n_boxes=25):
    """Random rectangles × kinds × bounds, spanning hits and misses."""
    rng = np.random.default_rng(seed)
    bounds = domain.bounds
    queries = []
    for _ in range(n_boxes):
        w = rng.uniform(0.05, 1.1) * bounds.width
        h = rng.uniform(0.05, 1.1) * bounds.height
        cx = rng.uniform(bounds.min_x, bounds.max_x)
        cy = rng.uniform(bounds.min_y, bounds.max_y)
        box = BBox.from_center((cx, cy), w, h)
        t1 = rng.uniform(0.0, horizon * 0.6)
        t2 = t1 + rng.uniform(0.0, horizon * 0.4)
        for kind in (STATIC, TRANSIENT):
            for bound in (LOWER, UPPER):
                queries.append(RangeQuery(box, t1, t2, kind=kind, bound=bound))
    return queries


def _key(result):
    return (
        result.value,
        result.missed,
        result.regions,
        result.edges_accessed,
        result.nodes_accessed,
        result.hops,
    )


# ----------------------------------------------------------------------
# Compiled network index structure
# ----------------------------------------------------------------------
class TestCompiledNetworkIndex:
    def test_region_partition_matches_dicts(self, deployment):
        network, _, _ = deployment
        index = network.compiled_index()
        assert index is network.compiled_index()  # cached
        junctions = network.domain.junctions
        for i, junction in enumerate(junctions):
            region = int(index.region_of_junction[i])
            assert junction in network.region_junctions(region)
        for region in range(index.n_regions):
            members = network.region_junctions(region)
            assert int(index.region_size[region]) == len(members)
            lo, hi = index.rj_offsets[region], index.rj_offsets[region + 1]
            csr = {junctions[j] for j in index.rj_junctions[lo:hi]}
            assert csr == set(members)

    def test_region_walls_roundtrip(self, deployment):
        network, _, _ = deployment
        index = network.compiled_index()
        interner = network.domain.edge_interner
        for region in range(index.n_regions):
            if region == index.ext_region:
                continue
            lo, hi = index.rw_offsets[region], index.rw_offsets[region + 1]
            decoded = set()
            for eid, sign in zip(index.rw_wall_ids[lo:hi],
                                 index.rw_signs[lo:hi]):
                u, v = interner.edge(int(eid))
                decoded.add((u, v) if sign > 0 else (v, u))
            expected = {
                tuple(edge) for edge in network.region_boundary([region])
            }
            assert decoded == expected

    def test_wall_owner_table_matches_network(self, deployment):
        network, _, _ = deployment
        index = network.compiled_index()
        interner = network.domain.edge_interner
        for wall in network.walls:
            eid, _ = interner.intern(*wall)
            lo, hi = index.wo_offsets[eid], index.wo_offsets[eid + 1]
            owners = set(int(s) for s in index.wo_sensors[lo:hi])
            assert owners == set(network.wall_sensors(*wall))


# ----------------------------------------------------------------------
# Bbox index
# ----------------------------------------------------------------------
class TestBboxIndex:
    def test_ids_match_set_lookup(self, deployment):
        network, _, _ = deployment
        domain = network.domain
        rng = np.random.default_rng(5)
        bounds = domain.bounds
        for _ in range(30):
            w = rng.uniform(0.0, 1.2) * bounds.width
            h = rng.uniform(0.0, 1.2) * bounds.height
            box = BBox.from_center(
                (rng.uniform(bounds.min_x, bounds.max_x),
                 rng.uniform(bounds.min_y, bounds.max_y)), w, h,
            )
            ids = domain.junction_ids_in_bbox(box)
            assert list(ids) == sorted(ids)
            named = {domain.junctions[i] for i in ids}
            assert named == domain.junctions_in_bbox(box)

    def test_empty_bbox(self, deployment):
        network, _, _ = deployment
        domain = network.domain
        far = BBox(1e6, 1e6, 1e6 + 1, 1e6 + 1)
        assert len(domain.junction_ids_in_bbox(far)) == 0
        assert domain.junctions_in_bbox(far) == set()


# ----------------------------------------------------------------------
# Planner equivalence: the randomized cross-check
# ----------------------------------------------------------------------
class TestPlannerEquivalence:
    @pytest.mark.parametrize("static_eval", ["end", "start", "min"])
    def test_execute_matches_python(self, deployment, static_eval):
        network, form, workload = deployment
        compiled = QueryEngine(
            network, form, planner="compiled", static_eval=static_eval
        )
        python = QueryEngine(
            network, form, planner="python", static_eval=static_eval
        )
        assert compiled.planner_in_use == "compiled"
        assert python.planner_in_use == "python"
        queries = _battery(network.domain, workload.horizon, seed=23)
        answered = 0
        missed = 0
        for query in queries:
            a = compiled.execute(query)
            b = python.execute(query)
            assert _key(a) == _key(b)
            answered += not a.missed
            missed += a.missed
        # The battery must actually exercise both outcomes.
        assert answered > 0 and missed > 0

    def test_execute_batch_matches_python_and_single(self, deployment):
        network, form, workload = deployment
        compiled = QueryEngine(network, form, planner="compiled")
        python = QueryEngine(network, form, planner="python")
        queries = _battery(network.domain, workload.horizon, seed=29)
        batch_c = compiled.execute_batch(queries)
        batch_p = python.execute_batch(queries)
        singles = compiled.execute_many(queries)
        for a, b, s in zip(batch_c, batch_p, singles):
            assert _key(a) == _key(b) == _key(s)

    def test_auto_resolution(self, deployment):
        network, form, _ = deployment
        assert QueryEngine(network, form).planner_in_use == "compiled"

        class NotIdNative:
            def net_until(self, edge, t):
                return 0

            def net_between(self, edge, t1, t2):
                return 0

        assert (
            QueryEngine(network, NotIdNative()).planner_in_use == "python"
        )

    def test_compiled_planner_on_legacy_store(self, deployment):
        """Forcing the compiled planner on a non-id-native store decodes
        the chain and still matches the python path exactly."""
        network, form, workload = deployment
        legacy = network.build_form_loop(
            workload.events(network.domain)
        )
        compiled = QueryEngine(network, legacy, planner="compiled")
        python = QueryEngine(network, legacy, planner="python")
        for query in _battery(network.domain, workload.horizon, seed=31,
                              n_boxes=8):
            assert _key(compiled.execute(query)) == _key(python.execute(query))

    def test_unknown_planner_rejected(self, deployment):
        network, form, _ = deployment
        with pytest.raises(QueryError):
            QueryEngine(network, form, planner="jit")


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
class TestPlannerEdgeCases:
    def test_empty_bbox_misses_identically(self, deployment):
        network, form, _ = deployment
        far = BBox(1e6, 1e6, 1e6 + 1, 1e6 + 1)
        for bound in (LOWER, UPPER):
            query = RangeQuery(far, 0.0, 1.0, bound=bound)
            a = QueryEngine(network, form, planner="compiled").execute(query)
            b = QueryEngine(network, form, planner="python").execute(query)
            assert a.missed and b.missed
            assert _key(a) == _key(b)

    def test_ext_touching_rectangle(self, deployment):
        """A rectangle covering the whole domain touches the EXT region:
        the upper bound misses, the lower bound selects every interior
        region — identically on both planners."""
        network, form, _ = deployment
        bounds = network.domain.bounds
        whole = BBox(bounds.min_x - 1, bounds.min_y - 1,
                     bounds.max_x + 1, bounds.max_y + 1)
        compiled = QueryEngine(network, form, planner="compiled")
        python = QueryEngine(network, form, planner="python")
        upper = RangeQuery(whole, 0.0, 1.0, bound=UPPER)
        a, b = compiled.execute(upper), python.execute(upper)
        assert a.missed and b.missed
        lower = RangeQuery(whole, 0.0, 1.0, bound=LOWER)
        a, b = compiled.execute(lower), python.execute(lower)
        assert _key(a) == _key(b)
        assert not a.missed
        assert network.ext_region not in a.regions

    def test_single_region_network(self):
        """The minimum deployment (one logical region besides EXT)."""
        network, form, workload = _deployment("grid", 2, seed=51)
        compiled = QueryEngine(network, form, planner="compiled")
        python = QueryEngine(network, form, planner="python")
        for query in _battery(network.domain, workload.horizon, seed=3,
                              n_boxes=10):
            assert _key(compiled.execute(query)) == _key(python.execute(query))

    def test_boundary_rejects_ext_region(self, deployment):
        network, form, _ = deployment
        planner = CompiledQueryPlanner(network)
        with pytest.raises(QueryError):
            planner.boundary((network.ext_region,))


# ----------------------------------------------------------------------
# Id-native integration and the LRU boundary cache
# ----------------------------------------------------------------------
class TestIdNativeIntegration:
    def test_matches_per_edge_sums(self, deployment):
        network, form, workload = deployment
        planner = CompiledQueryPlanner(network)
        regions = tuple(
            r for r in range(network.region_count)
            if r != network.ext_region
        )[:3]
        chain = planner.boundary(regions)
        edges = planner.decode_edges(chain)
        t1, t2 = workload.horizon * 0.25, workload.horizon * 0.75
        assert form.integrate_until_ids(
            chain.wall_ids, chain.signs, t2
        ) == sum(form.net_until(edge, t2) for edge in edges)
        assert form.integrate_between_ids(
            chain.wall_ids, chain.signs, t1, t2
        ) == sum(form.net_between(edge, t1, t2) for edge in edges)

    def test_inverted_interval_rejected(self, deployment):
        network, form, _ = deployment
        planner = CompiledQueryPlanner(network)
        chain = planner.boundary(
            tuple(r for r in range(network.region_count)
                  if r != network.ext_region)[:1]
        )
        with pytest.raises(QueryError):
            form.integrate_between_ids(chain.wall_ids, chain.signs, 5.0, 1.0)

    def test_decode_edges_cached_and_oriented(self, deployment):
        network, form, workload = deployment
        planner = CompiledQueryPlanner(network)
        regions = (next(r for r in range(network.region_count)
                        if r != network.ext_region),)
        chain = planner.boundary(regions)
        edges = planner.decode_edges(chain)
        assert planner.decode_edges(chain) is edges  # digest-cached
        assert {tuple(e) for e in edges} == {
            tuple(e) for e in network.region_boundary(regions)
        }


class TestBoundaryCacheLRU:
    def _chains(self, planner, network, n):
        regions = [r for r in range(network.region_count)
                   if r != network.ext_region]
        if len(regions) < n:
            return []  # too few distinct chains; callers skip
        return [planner.boundary(tuple(regions[:take]))
                for take in range(1, n + 1)]

    def test_cap_evicts_least_recent(self, deployment):
        network, _, workload = deployment
        columns = EventColumns.from_events(
            network.domain, workload.events(network.domain)
        )
        observed = columns.filter_edges(network._wall_lookup())
        with use_registry() as registry:
            form = CompiledTrackingForm(
                columns.interner, observed.edge_id, observed.direction,
                observed.t, boundary_cache_size=2,
            )
            assert form.boundary_cache_size == 2
            planner = CompiledQueryPlanner(network)
            chains = self._chains(planner, network, 3)
            if len(chains) < 3:
                pytest.skip("network too small for eviction test")
            for chain in chains:
                form.integrate_until_ids(chain.wall_ids, chain.signs, 1.0)
            assert form.boundary_cache_len == 2
            assert registry.value(
                "repro_csr_boundary_cache_total", outcome="evict"
            ) == 1
            # Least-recent (chains[0]) was evicted: re-touching it
            # compiles again.
            compiles = registry.value(
                "repro_csr_boundary_cache_total", outcome="compile"
            )
            form.integrate_until_ids(
                chains[0].wall_ids, chains[0].signs, 1.0
            )
            assert registry.value(
                "repro_csr_boundary_cache_total", outcome="compile"
            ) == compiles + 1

    def test_hit_refreshes_recency(self, deployment):
        network, _, workload = deployment
        columns = EventColumns.from_events(
            network.domain, workload.events(network.domain)
        )
        observed = columns.filter_edges(network._wall_lookup())
        with use_registry() as registry:
            form = CompiledTrackingForm(
                columns.interner, observed.edge_id, observed.direction,
                observed.t, boundary_cache_size=2,
            )
            planner = CompiledQueryPlanner(network)
            chains = self._chains(planner, network, 3)
            if len(chains) < 3:
                pytest.skip("network too small for eviction test")
            a, b, c = chains
            form.integrate_until_ids(a.wall_ids, a.signs, 1.0)
            form.integrate_until_ids(b.wall_ids, b.signs, 1.0)
            form.integrate_until_ids(a.wall_ids, a.signs, 1.0)  # refresh a
            form.integrate_until_ids(c.wall_ids, c.signs, 1.0)  # evicts b
            compiles = registry.value(
                "repro_csr_boundary_cache_total", outcome="compile"
            )
            form.integrate_until_ids(a.wall_ids, a.signs, 1.0)
            assert registry.value(
                "repro_csr_boundary_cache_total", outcome="compile"
            ) == compiles  # a still cached

    def test_zero_cap_disables_caching(self, deployment):
        network, _, workload = deployment
        columns = EventColumns.from_events(
            network.domain, workload.events(network.domain)
        )
        observed = columns.filter_edges(network._wall_lookup())
        form = CompiledTrackingForm(
            columns.interner, observed.edge_id, observed.direction,
            observed.t, boundary_cache_size=0,
        )
        planner = CompiledQueryPlanner(network)
        chain = self._chains(planner, network, 1)[0]
        v1 = form.integrate_until_ids(chain.wall_ids, chain.signs, 1.0)
        v2 = form.integrate_until_ids(chain.wall_ids, chain.signs, 1.0)
        assert v1 == v2
        assert form.boundary_cache_len == 0


# ----------------------------------------------------------------------
# Miss metering and degraded-dispatch accounting (regressions)
# ----------------------------------------------------------------------
class TestMissMetering:
    def test_single_miss_charges_seconds(self, deployment):
        network, form, _ = deployment
        far = BBox(1e6, 1e6, 1e6 + 1, 1e6 + 1)
        with use_registry() as registry:
            engine = QueryEngine(network, form)
            result = engine.execute(RangeQuery(far, 0.0, 1.0))
            assert result.missed
            assert registry.value("repro_query_misses_total",
                                  kind=STATIC, bound=LOWER) == 1
            total = registry.value("repro_query_seconds_total")
            assert total == pytest.approx(result.elapsed)
            assert total > 0.0

    def test_batch_misses_charge_seconds(self, deployment):
        network, form, workload = deployment
        far = BBox(1e6, 1e6, 1e6 + 1, 1e6 + 1)
        queries = [RangeQuery(far, 0.0, 1.0),
                   RangeQuery(far, 0.0, 1.0, bound=UPPER)]
        with use_registry() as registry:
            engine = QueryEngine(network, form)
            results = engine.execute_batch(queries)
            assert all(r.missed for r in results)
            assert registry.value("repro_query_seconds_total") == (
                pytest.approx(sum(r.elapsed for r in results))
            )


class TestDegradedAccounting:
    @pytest.fixture()
    def answered_query(self, deployment):
        network, form, workload = deployment
        engine = QueryEngine(network, form)
        bounds = network.domain.bounds
        for shrink in (0.8, 0.7, 0.6, 0.9):
            box = BBox.from_center(bounds.center,
                                   bounds.width * shrink,
                                   bounds.height * shrink)
            query = RangeQuery(box, 0.0, workload.horizon * 0.6)
            result = engine.execute(query)
            if not result.missed and result.nodes_accessed >= 2:
                return query, result
        pytest.skip("no answered multi-sensor query at this deployment")

    @pytest.mark.parametrize("planner", ["compiled", "python"])
    def test_lost_walls_not_charged(self, deployment, answered_query,
                                    planner):
        network, form, _ = deployment
        query, plain = answered_query
        injector = FaultInjector(
            FaultConfig(), network.sensors, crashed=network.sensors
        )
        with use_registry() as registry:
            result = QueryEngine(
                network, form, planner=planner, faults=injector
            ).execute(query)
            d = result.degradation
            assert d is not None and d.lost_walls > 0
            reached = d.boundary_walls - d.lost_walls
            # Only reached walls joined the aggregate: charge exactly
            # those, in the result fields and in the metric.
            assert result.edges_accessed == reached
            assert result.hops == reached
            assert registry.value(
                "repro_query_edges_accessed_total"
            ) == reached
        assert plain.edges_accessed == d.boundary_walls

    @pytest.mark.parametrize("planner", ["compiled", "python"])
    def test_degraded_results_planner_equivalent(self, deployment,
                                                 answered_query, planner):
        """Both planners produce the same degraded value, bound and
        accounting under an identical fault schedule."""
        network, form, _ = deployment
        query, _ = answered_query
        results = {}
        for mode in ("compiled", "python"):
            injector = FaultInjector(
                FaultConfig(), network.sensors,
                crashed=network.sensors[::2],
            )
            results[mode] = QueryEngine(
                network, form, planner=mode, faults=injector
            ).execute(query)
        a, b = results["compiled"], results["python"]
        assert _key(a) == _key(b)
        if a.degradation is not None:
            assert b.degradation is not None
            assert a.degradation.lost_walls == b.degradation.lost_walls
            assert a.degradation.error_bound == b.degradation.error_bound
