"""Unit tests for repro.geometry.primitives."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    Segment,
    almost_equal,
    angle_of,
    distance,
    lerp,
    midpoint,
    points_equal,
    polyline_length,
    squared_distance,
)


class TestScalarHelpers:
    def test_almost_equal_within_epsilon(self):
        assert almost_equal(1.0, 1.0 + 1e-12)

    def test_almost_equal_outside_epsilon(self):
        assert not almost_equal(1.0, 1.001)

    def test_points_equal(self):
        assert points_equal((1.0, 2.0), (1.0 + 1e-12, 2.0))
        assert not points_equal((1.0, 2.0), (1.1, 2.0))


class TestDistances:
    def test_distance_pythagorean(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_squared_distance(self):
        assert squared_distance((0, 0), (3, 4)) == pytest.approx(25.0)

    def test_distance_zero(self):
        assert distance((2, 2), (2, 2)) == 0.0


class TestInterpolation:
    def test_midpoint(self):
        assert midpoint((0, 0), (2, 4)) == (1.0, 2.0)

    def test_lerp_endpoints(self):
        assert lerp((0, 0), (10, 10), 0.0) == (0.0, 0.0)
        assert lerp((0, 0), (10, 10), 1.0) == (10.0, 10.0)

    def test_lerp_middle(self):
        assert lerp((0, 0), (10, 20), 0.5) == (5.0, 10.0)

    def test_angle_of_cardinal_directions(self):
        assert angle_of((0, 0), (1, 0)) == pytest.approx(0.0)
        assert angle_of((0, 0), (0, 1)) == pytest.approx(math.pi / 2)
        assert angle_of((0, 0), (-1, 0)) == pytest.approx(math.pi)


class TestSegment:
    def test_length(self):
        assert Segment((0, 0), (0, 5)).length == pytest.approx(5.0)

    def test_degenerate_segment_rejected(self):
        with pytest.raises(GeometryError):
            Segment((1, 1), (1, 1))

    def test_reversed(self):
        seg = Segment((0, 0), (1, 2))
        assert seg.reversed() == Segment((1, 2), (0, 0))

    def test_midpoint_property(self):
        assert Segment((0, 0), (4, 6)).midpoint == (2.0, 3.0)

    def test_point_at(self):
        seg = Segment((0, 0), (10, 0))
        assert seg.point_at(0.3) == (3.0, 0.0)

    def test_bounding_box_ordering(self):
        seg = Segment((5, 1), (2, 7))
        assert seg.bounding_box() == (2, 1, 5, 7)


class TestPolyline:
    def test_polyline_length(self):
        assert polyline_length([(0, 0), (3, 4), (3, 10)]) == pytest.approx(11.0)

    def test_polyline_single_point(self):
        assert polyline_length([(5, 5)]) == 0.0

    def test_polyline_empty(self):
        assert polyline_length([]) == 0.0
