"""Integration tests: the full pipeline against trajectory ground truth.

These check the system-level claims of the paper end to end on a
fresh (non-fixture) domain:

1. The unsampled framework answers exactly (no double counting).
2. Sampled frameworks bound the truth from below/above via their
   region approximations and are exact on the regions they cover.
3. Learned stores trade a small error for constant storage.
4. Communication accounting behaves as Fig. 11c describes.
"""

import numpy as np
import pytest

from repro.evaluation import SMALL_CONFIG, evaluate, get_pipeline
from repro.evaluation.harness import FIXED_QUERY_AREA
from repro.models import ModeledCountStore, PiecewiseLinearModel
from repro.query import QueryEngine, RangeQuery, TRANSIENT, UPPER
from repro.trajectories import net_change, occupancy_count


@pytest.fixture(scope="module")
def pipeline():
    return get_pipeline(SMALL_CONFIG)


class TestExactness:
    def test_full_network_exact_static(self, pipeline):
        queries = pipeline.standard_queries(FIXED_QUERY_AREA, n=10)
        for query in queries:
            result = pipeline.exact(query)
            region = pipeline.domain.junctions_in_bbox(query.box)
            truth = occupancy_count(
                pipeline.workload.trips, region, query.t2
            )
            assert result.value == truth

    def test_full_network_exact_transient(self, pipeline):
        queries = pipeline.standard_queries(
            FIXED_QUERY_AREA, kind=TRANSIENT, n=10
        )
        engine = pipeline.exact_engine
        for query in queries:
            result = engine.execute(query)
            region = pipeline.domain.junctions_in_bbox(query.box)
            truth = net_change(
                pipeline.workload.trips, region, query.t1, query.t2
            )
            assert result.value == truth


class TestBounds:
    def test_lower_upper_bracket_exact(self, pipeline):
        network = pipeline.network("quadtree", 20, seed=2)
        engine = pipeline.engine(network)
        queries = pipeline.standard_queries(0.1728, n=10)
        bracketed = 0
        for query in queries:
            lower = engine.execute(query)
            upper = engine.execute(query.with_bound(UPPER))
            exact = pipeline.exact(query)
            if lower.missed or upper.missed:
                continue
            assert lower.value <= exact.value + 1e-9
            assert upper.value >= exact.value - 1e-9
            bracketed += 1
        assert bracketed > 0

    def test_sampled_value_exact_on_covered_junctions(self, pipeline):
        network = pipeline.network("kdtree", 16, seed=3)
        engine = pipeline.engine(network)
        for query in pipeline.standard_queries(0.1728, n=6):
            result = engine.execute(query)
            if result.missed:
                continue
            covered = engine.region_junctions(result)
            truth = occupancy_count(
                pipeline.workload.trips, covered, query.t2
            )
            assert result.value == truth


class TestErrorDecreasesWithSize:
    def test_error_monotone_in_budget(self, pipeline):
        queries = pipeline.standard_queries(0.1728, n=12)
        reports = []
        for fraction in (0.15, 0.6):
            m = pipeline.budget_for_fraction(fraction)
            network = pipeline.network("quadtree", m, seed=1)
            reports.append(
                evaluate(pipeline, pipeline.engine(network).execute, queries)
            )
        small, large = reports
        if small.error.count and large.error.count:
            assert large.error.median <= small.error.median + 0.05
        else:
            # Too coarse to answer at the small budget: miss rate must
            # at least improve with the larger budget.
            assert large.miss_rate <= small.miss_rate


class TestLearnedStoreIntegration:
    def test_modeled_store_small_extra_error(self, pipeline):
        network = pipeline.network("quadtree", 20, seed=2)
        exact_form = pipeline.form(network)
        store = ModeledCountStore.fit(exact_form, PiecewiseLinearModel)
        exact_engine = QueryEngine(network, exact_form)
        model_engine = QueryEngine(network, store)
        deltas = []
        for query in pipeline.standard_queries(0.1728, n=8):
            exact = exact_engine.execute(query)
            approx = model_engine.execute(query)
            if exact.missed or exact.value == 0:
                continue
            deltas.append(
                abs(approx.value - exact.value) / abs(exact.value)
            )
        if deltas:
            assert np.median(deltas) < 0.5

    def test_storage_reduction_ratio(self, pipeline):
        network = pipeline.network("quadtree", 20, seed=2)
        form = pipeline.form(network)
        store = ModeledCountStore.fit(form, PiecewiseLinearModel)
        exact_bytes = form.total_events * 8
        if exact_bytes > store.storage_bytes:
            reduction = 1 - store.storage_bytes / exact_bytes
            assert reduction > 0.0


class TestCommunicationShape:
    def test_flood_grows_with_area_perimeter_flat(self, pipeline):
        network = pipeline.network("quadtree", 24, seed=4)
        engine = pipeline.engine(network)
        flood_nodes, perimeter_nodes = [], []
        for fraction in (0.0432, 0.1728, 0.3456):
            queries = pipeline.standard_queries(fraction, n=6)
            flood, perim = [], []
            for query in queries:
                exact = pipeline.exact(query)
                approx = engine.execute(query)
                flood.append(exact.nodes_accessed)
                if not approx.missed:
                    perim.append(approx.nodes_accessed)
            flood_nodes.append(np.mean(flood))
            if perim:
                perimeter_nodes.append(np.mean(perim))
        # Flooding scales strongly with area...
        assert flood_nodes[-1] > 2.5 * flood_nodes[0]
        # ...while the perimeter protocol grows sublinearly.
        if len(perimeter_nodes) >= 2:
            flood_growth = flood_nodes[-1] / flood_nodes[0]
            perimeter_growth = perimeter_nodes[-1] / perimeter_nodes[0]
            assert perimeter_growth < flood_growth

    def test_misses_drop_with_budget(self, pipeline):
        queries = pipeline.standard_queries(0.0864, n=12)
        rates = []
        for fraction in (0.03, 0.4):
            m = pipeline.budget_for_fraction(fraction)
            network = pipeline.network("uniform", m, seed=6)
            report = evaluate(pipeline, pipeline.engine(network).execute, queries)
            rates.append(report.miss_rate)
        assert rates[-1] <= rates[0]
