"""Unit tests for learned count stores (ModeledCountStore, BufferedEdgeStore)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.forms import TrackingForm
from repro.models import (
    BufferedEdgeStore,
    LinearModel,
    ModeledCountStore,
    PiecewiseLinearModel,
)


@pytest.fixture()
def busy_form() -> TrackingForm:
    form = TrackingForm()
    rng = np.random.default_rng(0)
    for t in np.sort(rng.uniform(0, 1000, 300)):
        form.record("a", "b", float(t))
    for t in np.sort(rng.uniform(0, 1000, 120)):
        form.record("b", "a", float(t))
    for t in np.sort(rng.uniform(0, 1000, 50)):
        form.record("c", "d", float(t))
    return form


class TestModeledCountStore:
    def test_tracks_exact_counts(self, busy_form):
        store = ModeledCountStore.fit(busy_form, PiecewiseLinearModel)
        for t in (100.0, 400.0, 900.0):
            exact = busy_form.count_entering(("a", "b"), t)
            approx = store.count_entering(("a", "b"), t)
            assert abs(approx - exact) <= 0.12 * 300

    def test_direction_streams_independent(self, busy_form):
        store = ModeledCountStore.fit(busy_form, PiecewiseLinearModel)
        forward = store.count_entering(("a", "b"), 1000.0)
        backward = store.count_entering(("b", "a"), 1000.0)
        assert forward == pytest.approx(300, abs=1)
        assert backward == pytest.approx(120, abs=1)

    def test_unknown_edge_zero(self, busy_form):
        store = ModeledCountStore.fit(busy_form, LinearModel)
        assert store.count_entering(("x", "y"), 10.0) == 0.0
        assert store.net_until(("x", "y"), 10.0) == 0.0

    def test_net_until_antisymmetric(self, busy_form):
        store = ModeledCountStore.fit(busy_form, LinearModel)
        assert store.net_until(("a", "b"), 500.0) == pytest.approx(
            -store.net_until(("b", "a"), 500.0)
        )

    def test_net_between_inverted_rejected(self, busy_form):
        store = ModeledCountStore.fit(busy_form, LinearModel)
        with pytest.raises(ModelError):
            store.net_between(("a", "b"), 10.0, 5.0)

    def test_stream_count(self, busy_form):
        store = ModeledCountStore.fit(busy_form, LinearModel)
        assert store.stream_count == 3  # a->b, b->a, c->d

    def test_storage_independent_of_events(self):
        small_form = TrackingForm()
        large_form = TrackingForm()
        for t in range(10):
            small_form.record("a", "b", float(t))
        for t in range(10_000):
            large_form.record("a", "b", float(t))
        small = ModeledCountStore.fit(small_form, LinearModel)
        large = ModeledCountStore.fit(large_form, LinearModel)
        assert small.storage_bytes == large.storage_bytes

    def test_storage_much_smaller_than_exact(self, busy_form):
        store = ModeledCountStore.fit(busy_form, LinearModel)
        exact_bytes = busy_form.total_events * 8
        assert store.storage_bytes < exact_bytes / 5

    def test_storage_profile_per_edge(self, busy_form):
        store = ModeledCountStore.fit(busy_form, LinearModel)
        profile = store.storage_profile()
        assert len(profile) == 2  # edges {a,b} and {c,d}


class TestBufferedEdgeStore:
    def test_exact_while_buffered(self):
        store = BufferedEdgeStore(LinearModel, buffer_size=100)
        for t in range(50):
            store.record("a", "b", float(t))
        assert store.count_entering(("a", "b"), 25.0) == 26

    def test_flush_preserves_totals(self):
        store = BufferedEdgeStore(LinearModel, buffer_size=32)
        for t in range(100):
            store.record("a", "b", float(t))
        # Everything <= latest time is counted across model + buffer.
        assert store.count_entering(("a", "b"), 99.0) == pytest.approx(
            100, abs=2
        )

    def test_recent_window_accurate(self):
        store = BufferedEdgeStore(PiecewiseLinearModel, buffer_size=64)
        rng = np.random.default_rng(1)
        times = np.sort(rng.uniform(0, 1000, 400))
        for t in times:
            store.record("a", "b", float(t))
        probe = times[-30]
        exact = np.searchsorted(times, probe, side="right")
        assert store.count_entering(("a", "b"), probe) == pytest.approx(
            exact, abs=5
        )

    def test_out_of_order_rejected(self):
        store = BufferedEdgeStore(LinearModel)
        store.record("a", "b", 10.0)
        with pytest.raises(ModelError):
            store.record("a", "b", 5.0)

    def test_directions_independent_ordering(self):
        store = BufferedEdgeStore(LinearModel)
        store.record("a", "b", 10.0)
        store.record("b", "a", 5.0)  # different stream: allowed
        assert store.count_entering(("a", "b"), 10.0) == 1
        assert store.count_entering(("b", "a"), 10.0) == 1

    def test_bounded_storage(self):
        store = BufferedEdgeStore(LinearModel, buffer_size=64)
        for t in range(10_000):
            store.record("a", "b", float(t))
        # Model params + at most one buffer of 64 events.
        assert store.storage_bytes <= (64 + 16) * 8

    def test_invalid_buffer_size(self):
        with pytest.raises(ModelError):
            BufferedEdgeStore(LinearModel, buffer_size=0)

    def test_net_between(self):
        store = BufferedEdgeStore(LinearModel, buffer_size=1000)
        for t in range(100):
            store.record("in", "out", float(t))
        assert store.net_between(("in", "out"), 9.0, 19.0) == 10
