"""Tests for the fleet-telemetry stack built on the obs substrate.

Covers the time-series recorder (aligned sampling, ring wrap, windowed
deltas), SLO error-budget arithmetic and the alert log, per-sensor
health scoring and fleet rollups (including the simulator's labeled
counters and active probe sweeps), query EXPLAIN consistency against
the engine's own accounting, the HTML dashboard rendering, and the
``repro monitor`` CLI acceptance path.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.geometry import BBox
from repro.network import FaultConfig, FaultInjector
from repro.obs import (
    AlertLog,
    AvailabilitySLO,
    Instrumentation,
    LatencySLO,
    MetricsRegistry,
    SLOStatus,
    SensorHealth,
    TimeSeriesRecorder,
    build_explain,
    default_slos,
    evaluate_slos,
    fleet_health,
    use_registry,
)
from repro.obs.dashboard import render_dashboard
from repro.obs.health import (
    DEGRADED_THRESHOLD,
    FAILED_MIN_ATTEMPTS,
    collect_sensor_stats,
)
from repro.query import QueryEngine, RangeQuery


class _ManualClock:
    """A controllable monotonic clock for deterministic sampling."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture()
def clock() -> _ManualClock:
    return _ManualClock()


# ----------------------------------------------------------------------
# Time-series recorder
# ----------------------------------------------------------------------
class TestTimeSeriesRecorder:
    def test_rates_are_per_second_deltas(self, clock):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, clock=clock)
        counter = registry.counter("c_total")
        counter.inc(4)
        first = recorder.sample()
        clock.t = 2.0
        counter.inc(6)
        second = recorder.sample()
        # First tick has no interval: rate 0, totals absolute.
        assert first.rates["c_total"] == 0.0
        assert first.totals["c_total"] == 4
        assert second.dt == 2.0
        assert second.rates["c_total"] == pytest.approx(3.0)
        assert second.totals["c_total"] == 10

    def test_gauges_and_quantiles_sampled(self, clock):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, clock=clock)
        registry.gauge("g").set(7.5)
        hist = registry.histogram("h", buckets=(1, 10))
        for value in (0.5, 0.6, 5.0, 5.0):
            hist.observe(value)
        sample = recorder.sample()
        assert sample.gauges["g"] == 7.5
        assert set(sample.quantiles) == {"h:p50", "h:p95", "h:p99"}
        assert sample.hist_counts["h"] == (4, pytest.approx(11.1))
        # Cumulative buckets include the +Inf overflow slot.
        assert sample.hist_buckets["h"] == (2, 4, 4)

    def test_metric_born_mid_run_reads_none_before_birth(self, clock):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, clock=clock)
        recorder.sample()
        clock.t = 1.0
        registry.counter("late_total").inc()
        recorder.sample()
        series = recorder.total_series("late_total")
        assert series.values == (None, 1.0)
        assert series.last == 1.0

    def test_rate_series_sums_across_label_sets(self, clock):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, clock=clock)
        registry.counter("c_total", kind="a").inc(2)
        registry.counter("c_total", kind="b").inc(3)
        recorder.sample()
        clock.t = 1.0
        registry.counter("c_total", kind="a").inc(5)
        recorder.sample()
        assert recorder.total_series("c_total").values == (5.0, 10.0)
        assert recorder.rate_series("c_total").values[-1] == pytest.approx(
            5.0
        )

    def test_ring_buffer_wraps_at_capacity(self, clock):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, capacity=4, clock=clock)
        for i in range(10):
            clock.t = float(i)
            recorder.sample()
        assert len(recorder) == 4
        assert [s.t for s in recorder.samples] == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(MetricsRegistry(), capacity=1)

    def test_delta_over_trailing_window(self, clock):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, clock=clock)
        counter = registry.counter("c_total")
        for t, amount in ((0.0, 1), (10.0, 2), (20.0, 4)):
            clock.t = t
            counter.inc(amount)
            recorder.sample()
        # Whole ring: everything since the first sample.
        assert recorder.delta("c_total") == 6.0
        # Trailing 10s: base is the t=10 sample.
        assert recorder.delta("c_total", window_s=10.0) == 4.0
        assert recorder.delta("missing_total") == 0.0

    def test_threshold_fraction_by_bucket_delta(self, clock):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, clock=clock)
        hist = registry.histogram("lat", buckets=(1.0, 10.0))
        hist.observe(0.5)
        recorder.sample()
        clock.t = 1.0
        for value in (0.2, 0.3, 5.0, 50.0):
            hist.observe(value)
        recorder.sample()
        good, total = recorder.threshold_fraction(
            "lat", 1.0, window_s=0.5
        )
        assert (good, total) == (2.0, 4.0)
        # A threshold inside a bucket counts only fully-covered buckets.
        good, total = recorder.threshold_fraction("lat", 5.0, window_s=0.5)
        assert (good, total) == (2.0, 4.0)

    def test_to_json_is_nan_safe(self, clock):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, clock=clock)
        registry.histogram("h")  # empty: quantiles are NaN
        registry.counter("c_total").inc()
        recorder.sample()
        doc = recorder.to_json()
        text = json.dumps(doc)  # must not raise / emit bare NaN
        assert "NaN" not in text
        assert doc["series"]["h:p50"]["values"] == [None]
        assert doc["series"]["c_total"]["kind"] == "counter_rate"

    def test_duck_typed_registry_falls_back_to_iter_protocol(self, clock):
        class StubRegistry:
            def iter_counters(self):
                yield "stub_total", {"kind": "x"}, type(
                    "C", (), {"value": 3}
                )()

            def iter_gauges(self):
                return iter(())

            def iter_histograms(self):
                return iter(())

        recorder = TimeSeriesRecorder(StubRegistry(), clock=clock)
        sample = recorder.sample()
        assert sample.totals == {'stub_total{kind="x"}': 3}


# ----------------------------------------------------------------------
# SLOs, error budgets and alerts
# ----------------------------------------------------------------------
class TestSLOArithmetic:
    def test_budget_and_burn(self):
        status = SLOStatus(
            name="s", objective=0.9, window_s=None, good=80, total=100
        )
        assert status.compliance == pytest.approx(0.8)
        assert not status.ok
        assert status.error_budget == pytest.approx(0.1)
        assert status.budget_used == pytest.approx(0.2)
        assert status.burn_rate == pytest.approx(2.0)

    def test_idle_window_is_compliant(self):
        status = SLOStatus(
            name="s", objective=0.99, window_s=None, good=0, total=0
        )
        assert status.compliance == 1.0
        assert status.ok
        assert status.burn_rate == 0.0

    def test_perfect_objective_burns_infinitely(self):
        status = SLOStatus(
            name="s", objective=1.0, window_s=None, good=99, total=100
        )
        assert status.burn_rate == float("inf")

    def test_as_dict_round_trips_fields(self):
        status = SLOStatus(
            name="s", objective=0.9, window_s=60.0, good=9, total=10
        )
        doc = status.as_dict()
        assert doc["compliance"] == pytest.approx(0.9)
        assert doc["ok"] is True
        assert doc["window_s"] == 60.0


class TestSLOEvaluation:
    def _recorder(self, clock):
        registry = MetricsRegistry()
        return registry, TimeSeriesRecorder(registry, clock=clock)

    def test_availability_counts_misses_and_degraded_dispatches(
        self, clock
    ):
        registry, recorder = self._recorder(clock)
        recorder.sample()
        clock.t = 1.0
        registry.counter("repro_queries_total", outcome="answered").inc(10)
        registry.counter("repro_query_misses_total").inc(1)
        registry.counter(
            "repro_sim_degraded_dispatches_total", strategy="perimeter_walk"
        ).inc(2)
        recorder.sample()
        status = AvailabilitySLO(name="availability", objective=0.9).evaluate(
            recorder
        )
        assert (status.good, status.total) == (7.0, 10.0)
        assert not status.ok
        assert status.burn_rate == pytest.approx(3.0)

    def test_latency_slo_uses_histogram_buckets(self, clock):
        registry, recorder = self._recorder(clock)
        hist = registry.histogram(
            "repro_query_latency_seconds", buckets=(1e-3, 2e-3, 1.0)
        )
        recorder.sample()
        clock.t = 1.0
        for value in (5e-4, 1.5e-3, 0.5):
            hist.observe(value)
        recorder.sample()
        status = LatencySLO(
            name="latency", objective=0.95, threshold=2e-3
        ).evaluate(recorder)
        assert (status.good, status.total) == (2.0, 3.0)

    def test_default_slos_evaluate_clean_on_idle_recorder(self, clock):
        _, recorder = self._recorder(clock)
        recorder.sample()
        statuses = evaluate_slos(default_slos(), recorder)
        assert [s.name for s in statuses] == [
            "availability", "latency", "containment",
        ]
        assert all(s.ok for s in statuses)


class TestAlertLog:
    def _status(self, ok: bool) -> SLOStatus:
        good = 100 if ok else 10
        return SLOStatus(
            name="availability", objective=0.9, window_s=None,
            good=good, total=100,
        )

    def test_records_crossings_not_levels(self):
        log = AlertLog()
        assert log.observe(0.0, [self._status(True)]) == []
        fired = log.observe(1.0, [self._status(False)])
        assert [a.event for a in fired] == ["breach"]
        # Staying violated fires nothing new.
        assert log.observe(2.0, [self._status(False)]) == []
        fired = log.observe(3.0, [self._status(True)])
        assert [a.event for a in fired] == ["recover"]
        assert len(log) == 2
        assert "breach" in log.format() and "recover" in log.format()

    def test_empty_log_formats(self):
        assert AlertLog().format() == "no SLO threshold crossings"


# ----------------------------------------------------------------------
# Per-sensor health
# ----------------------------------------------------------------------
class TestSensorHealth:
    def test_score_and_status_transitions(self):
        assert SensorHealth(sensor=1).status == "idle"
        assert SensorHealth(sensor=1).score == 1.0
        # One dropped message does not condemn a sensor.
        assert FAILED_MIN_ATTEMPTS > 1
        assert SensorHealth(sensor=1, attempts=1, acks=0).status == "degraded"
        assert SensorHealth(
            sensor=1, attempts=FAILED_MIN_ATTEMPTS, acks=0
        ).status == "failed"
        healthy = SensorHealth(sensor=1, attempts=10, acks=9)
        assert healthy.status == "healthy"
        assert healthy.score == pytest.approx(0.9)
        flaky = SensorHealth(sensor=1, attempts=10, acks=5)
        assert flaky.score < DEGRADED_THRESHOLD
        assert flaky.status == "degraded"

    def test_fleet_rollup_from_labeled_counters(self):
        registry = MetricsRegistry()

        def contact(sensor: int, attempts: int, acks: int) -> None:
            label = str(sensor)
            registry.counter(
                "repro_sensor_attempts_total", sensor=label
            ).inc(attempts)
            if acks:
                registry.counter(
                    "repro_sensor_acks_total", sensor=label
                ).inc(acks)

        contact(3, 10, 10)
        contact(5, 10, 5)
        contact(9, 4, 0)
        fleet = fleet_health(registry, known_sensors=[3, 5, 9, 12])
        assert fleet.counts == {
            "healthy": 1, "degraded": 1, "failed": 1, "idle": 1,
        }
        assert fleet.failed_sensors == (9,)
        # Worst offenders: lowest score first; idle sensors excluded.
        assert [s.sensor for s in fleet.worst_offenders(2)] == [9, 5]
        report = fleet.format_report()
        assert "1 healthy, 1 degraded, 1 failed, 1 idle" in report
        assert fleet.as_dict()["failed_sensors"] == [9]

    def test_collect_ignores_malformed_sensor_labels(self):
        registry = MetricsRegistry()
        registry.counter("repro_sensor_attempts_total", sensor="7").inc()
        registry.counter("repro_sensor_attempts_total", sensor="bogus").inc()
        registry.counter("repro_sensor_attempts_total").inc()
        assert set(collect_sensor_stats(registry)) == {7}


# ----------------------------------------------------------------------
# Simulator telemetry: labeled counters and probe sweeps
# ----------------------------------------------------------------------
class TestSimulatorTelemetry:
    def _query(self, workload) -> RangeQuery:
        return RangeQuery(BBox(2, 2, 8, 8), 0.0, 0.5 * workload.horizon)

    def test_faulty_dispatch_flushes_per_sensor_counters(
        self, sampled_net, sampled_form, workload
    ):
        injector = FaultInjector(
            FaultConfig(seed=5, drop_rate=0.3), sampled_net.sensors
        )
        with use_registry() as registry:
            engine = QueryEngine(sampled_net, sampled_form, faults=injector)
            result = engine.execute(self._query(workload))
            stats = collect_sensor_stats(registry)
        assert not result.missed
        assert stats, "faulty dispatch must emit per-sensor telemetry"
        assert sum(s.get("attempts", 0) for s in stats.values()) > 0

    def test_fault_free_engine_emits_no_sensor_counters(
        self, sampled_net, sampled_form, workload
    ):
        with use_registry() as registry:
            engine = QueryEngine(sampled_net, sampled_form)
            engine.execute(self._query(workload))
            assert collect_sensor_stats(registry) == {}

    def test_probe_fleet_identifies_crashed_sensors(
        self, sampled_net, sampled_form
    ):
        crashed = sorted(sampled_net.sensors)[:3]
        injector = FaultInjector(
            FaultConfig(seed=2), sampled_net.sensors, crashed=crashed
        )
        with use_registry() as registry:
            engine = QueryEngine(sampled_net, sampled_form, faults=injector)
            reachable = engine.simulator.probe_fleet()
            fleet = fleet_health(
                registry, known_sensors=sampled_net.sensors
            )
            sweeps = registry.value("repro_probe_sweeps_total")
            unreachable = registry.value("repro_probe_unreachable_total")
        assert set(reachable) == set(sampled_net.sensors)
        assert all(not reachable[s] for s in crashed)
        # Every crashed sensor shows up as failed from counters alone.
        assert set(crashed) <= set(fleet.failed_sensors)
        assert sweeps == 1
        assert unreachable >= len(crashed)
        # Responsive sensors acked their probe and stay healthy.
        healthy = {s.sensor for s in fleet.by_status("healthy")}
        assert healthy == set(sampled_net.sensors) - set(crashed)

    def test_crash_schedule_exported_as_gauges(self, sampled_net):
        crashed = sorted(sampled_net.sensors)[:2]
        with use_registry() as registry:
            FaultInjector(
                FaultConfig(seed=2), sampled_net.sensors, crashed=crashed
            ).record_schedule()
            assert registry.value("repro_fault_crashed_sensors") == 2
            assert registry.value("repro_fault_flaky_sensors") == 0


# ----------------------------------------------------------------------
# Query EXPLAIN
# ----------------------------------------------------------------------
class TestExplain:
    def _query(self, workload) -> RangeQuery:
        return RangeQuery(BBox(2, 2, 8, 8), 0.0, 0.5 * workload.horizon)

    def test_explain_matches_engine_accounting(
        self, sampled_net, sampled_form, workload
    ):
        query = self._query(workload)
        engine = QueryEngine(sampled_net, sampled_form)
        plan = engine.explain(query)
        reference = QueryEngine(
            sampled_net,
            sampled_form,
            instrumentation=Instrumentation(provenance=True),
        ).execute(query)
        assert plan.value == reference.value
        assert tuple(sorted(plan.region_ids)) == tuple(
            sorted(reference.regions)
        )
        assert plan.sensors_accessed == reference.nodes_accessed
        assert plan.edges_accessed == reference.edges_accessed
        assert plan.boundary_length == reference.provenance.boundary_length
        assert plan.junction_count == reference.provenance.junction_count
        assert set(plan.phase_s) == set(reference.provenance.phase_s)

    def test_explain_leaves_instrumentation_unchanged(
        self, sampled_net, sampled_form, workload
    ):
        engine = QueryEngine(sampled_net, sampled_form)
        obs_before = engine.obs
        engine.explain(self._query(workload))
        assert engine.obs is obs_before
        # A later plain execute still attaches no provenance.
        assert engine.execute(self._query(workload)).provenance is None

    def test_explain_includes_compiled_planner_stats(
        self, sampled_net, sampled_form, workload
    ):
        engine = QueryEngine(sampled_net, sampled_form, planner="compiled")
        plan = engine.explain(self._query(workload))
        assert plan.planner == "compiled"
        stats = plan.planner_stats
        assert stats["sensors"] == len(sampled_net.sensors)
        assert stats["regions"] > 0 and stats["walls"] > 0
        assert "index:" in plan.format()

    def test_explain_formats_miss(self, sampled_net, sampled_form, workload):
        engine = QueryEngine(sampled_net, sampled_form)
        plan = engine.explain(
            RangeQuery(BBox(0.001, 0.001, 0.002, 0.002), 0.0, 1.0)
        )
        assert plan.missed
        assert "MISS" in plan.format()

    def test_explain_reports_fault_dispatch(
        self, sampled_net, sampled_form, workload
    ):
        crashed = sorted(sampled_net.sensors)[:4]
        injector = FaultInjector(
            FaultConfig(seed=3), sampled_net.sensors, crashed=crashed
        )
        with use_registry():
            engine = QueryEngine(sampled_net, sampled_form, faults=injector)
            plan = engine.explain(self._query(workload))
        assert plan.dispatch_strategy == "perimeter_walk"
        assert "dispatch" in plan.format()
        doc = plan.as_dict()
        assert doc["dispatch_strategy"] == "perimeter_walk"
        json.dumps(doc)  # JSON-safe

    def test_build_explain_requires_provenance(
        self, sampled_net, sampled_form, workload
    ):
        engine = QueryEngine(sampled_net, sampled_form)
        result = engine.execute(self._query(workload))
        with pytest.raises(ValueError):
            build_explain(engine, result)


# ----------------------------------------------------------------------
# Dashboard rendering
# ----------------------------------------------------------------------
class TestDashboard:
    def _render(self, clock, with_data: bool) -> str:
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, clock=clock)
        recorder.sample()
        if with_data:
            clock.t = 1.0
            registry.counter("repro_queries_total").inc(5)
            registry.counter(
                "repro_sensor_attempts_total", sensor="4"
            ).inc(6)
            registry.counter(
                "repro_sensor_acks_total", sensor="4"
            ).inc(6)
            recorder.sample()
        statuses = evaluate_slos(default_slos(), recorder)
        log = AlertLog()
        if with_data:
            log.observe(
                1.0,
                [SLOStatus(name="availability", objective=0.9,
                           window_s=None, good=1, total=10)],
            )
        return render_dashboard(
            title="monitor <test>",
            meta={"blocks": 60, "queries": 5},
            recorder=recorder,
            statuses=statuses,
            alerts=log.alerts,
            health=fleet_health(registry, known_sensors=[4, 7]),
            explain_text="QUERY PLAN  static/lower" if with_data else None,
        )

    def test_page_is_self_contained_and_complete(self, clock):
        page = self._render(clock, with_data=True)
        assert page.startswith("<!doctype html>")
        assert "monitor &lt;test&gt;" in page  # title escaped
        assert "<svg" in page  # inline sparkline
        assert "availability" in page and "latency" in page
        assert "QUERY PLAN" in page
        assert "breach" in page  # alert timeline
        # Self-contained: no external fetches.
        assert "http://" not in page and "https://" not in page
        assert "<script" not in page

    def test_renders_with_empty_telemetry(self, clock):
        page = self._render(clock, with_data=False)
        assert page.startswith("<!doctype html>")
        assert "No SLO threshold crossings." in page


# ----------------------------------------------------------------------
# CLI acceptance: repro monitor
# ----------------------------------------------------------------------
class TestMonitorCLI:
    @pytest.fixture(scope="class")
    def monitor_run(self, tmp_path_factory):
        import io
        from contextlib import redirect_stdout

        from repro.__main__ import main

        tmp_path = tmp_path_factory.mktemp("monitor")
        html_path = tmp_path / "dashboard.html"
        json_path = tmp_path / "monitor.json"
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            status = main(
                [
                    "monitor",
                    "--blocks", "80",
                    "--trips", "400",
                    "--queries", "40",
                    "--seed", "3",
                    "--smoke",
                    "--html", str(html_path),
                    "--json", str(json_path),
                ]
            )
        assert status == 0
        return buffer.getvalue(), html_path, json_path

    def test_smoke_invariants_hold(self, monitor_run):
        out, _, _ = monitor_run
        assert "fleet health:" in out
        assert "QUERY PLAN" in out
        assert "smoke: health, SLO burn and EXPLAIN invariants hold" in out

    def test_dashboard_artifact_written(self, monitor_run):
        _, html_path, _ = monitor_run
        page = html_path.read_text()
        assert page.startswith("<!doctype html>")
        assert "Sensor health" in page

    def test_json_export_is_complete(self, monitor_run):
        _, _, json_path = monitor_run
        doc = json.loads(json_path.read_text())
        assert set(doc) >= {"timeseries", "slos", "alerts", "health",
                            "explain"}
        assert doc["timeseries"]["samples"] >= 2
        names = {slo["name"] for slo in doc["slos"]}
        assert names == {"availability", "latency", "containment"}
        assert doc["health"]["counts"]["failed"] >= 0
        assert math.isfinite(doc["explain"]["elapsed_s"])
