"""Unit tests for GPS import, SVG rendering and deployment serialization."""

import csv
import xml.etree.ElementTree as ElementTree

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.forms import TrackingForm
from repro.geometry import BBox
from repro.mobility import MobilityDomain, organic_city
from repro.sampling import load_network, save_network
from repro.trajectories import (
    export_trips_as_gps,
    load_gps_trips,
    occupancy_count,
    read_gps_csv,
    trips_from_fixes,
)
from repro.viz import render_domain_svg, render_network_svg


# ----------------------------------------------------------------------
# GPS I/O (§5.1.3 pre-processing)
# ----------------------------------------------------------------------
class TestGpsCsv:
    def test_read_valid(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("object_id,t,x,y\n1,0.0,2.5,3.5\n1,10.0,3.0,3.0\n")
        fixes = read_gps_csv(path)
        assert fixes == [(1, 0.0, 2.5, 3.5), (1, 10.0, 3.0, 3.0)]

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,time\n1,0\n")
        with pytest.raises(WorkloadError):
            read_gps_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("object_id,t,x,y\n1,zero,2,3\n")
        with pytest.raises(WorkloadError):
            read_gps_csv(path)


class TestTripsFromFixes:
    def test_map_matching_round_trip(self, grid_domain, tmp_path):
        """Export noiseless GPS from known trips, re-import, and check
        the occupancy ground truth survives the round trip."""
        from repro.trajectories import plan_trip

        a = grid_domain.nearest_junction((0, 0))
        b = grid_domain.nearest_junction((10, 10))
        original = plan_trip(grid_domain, 7, a, b, 100.0, 0.01,
                             dwell_time=500.0)
        path = tmp_path / "trips.csv"
        export_trips_as_gps(grid_domain, [original], path)
        loaded = load_gps_trips(grid_domain, path)
        assert len(loaded) == 1
        trip = loaded[0]
        assert trip.origin == a
        assert trip.destination == b
        region = {b}
        probe = original.end_time - 1.0
        assert occupancy_count([trip], region, probe) == occupancy_count(
            [original], region, probe
        )

    def test_noisy_gps_still_matches(self, grid_domain, tmp_path):
        from repro.trajectories import plan_trip

        a = grid_domain.nearest_junction((0, 0))
        b = grid_domain.nearest_junction((10, 0))
        original = plan_trip(grid_domain, 1, a, b, 0.0, 0.01, 100.0)
        path = tmp_path / "noisy.csv"
        export_trips_as_gps(grid_domain, [original], path,
                            jitter=0.3, rng=np.random.default_rng(0))
        loaded = load_gps_trips(grid_domain, path)
        # Jitter of 0.3 on a spacing-1.67 grid: snaps stay correct.
        assert loaded[0].origin == a
        assert loaded[0].destination == b

    def test_single_fix_objects_dropped(self, grid_domain):
        trips = trips_from_fixes(grid_domain, [(1, 0.0, 5.0, 5.0)])
        assert trips == []

    def test_stationary_object_gets_observable_dwell(self, grid_domain):
        trips = trips_from_fixes(
            grid_domain,
            [(1, 0.0, 5.0, 5.0), (1, 60.0, 5.05, 5.0)],
        )
        assert len(trips) == 1
        assert trips[0].end_time > trips[0].start_time

    def test_unsorted_and_duplicate_timestamps(self, grid_domain):
        fixes = [
            (1, 50.0, 10.0, 10.0),
            (1, 0.0, 0.0, 0.0),
            (1, 50.0, 10.0, 9.8),  # duplicate t: last wins
        ]
        trips = trips_from_fixes(grid_domain, fixes)
        assert len(trips) == 1
        times = [t for _, t in trips[0].visits]
        assert times == sorted(times)

    def test_invalid_min_fixes(self, grid_domain):
        with pytest.raises(WorkloadError):
            trips_from_fixes(grid_domain, [], min_fixes=0)

    def test_ingested_counts_consistent(self, grid_domain, tmp_path):
        """GPS-imported trips drive the standard counting pipeline."""
        from repro.trajectories import all_events, plan_trip

        a = grid_domain.nearest_junction((0, 0))
        b = grid_domain.nearest_junction((5, 5))
        trips = [plan_trip(grid_domain, i, a, b, 10.0 * i, 0.01, 300.0)
                 for i in range(3)]
        path = tmp_path / "fleet.csv"
        export_trips_as_gps(grid_domain, trips, path)
        loaded = load_gps_trips(grid_domain, path)
        form = TrackingForm()
        for event in all_events(grid_domain, loaded):
            form.record(event.tail, event.head, event.t)
        region = {b}
        chain = grid_domain.inward_boundary_edges(region)
        probe = max(t.end_time for t in loaded) - 1.0
        assert form.integrate_until(chain, probe) == occupancy_count(
            loaded, region, probe
        )


# ----------------------------------------------------------------------
# SVG rendering
# ----------------------------------------------------------------------
class TestViz:
    def test_domain_svg_valid_xml(self, grid_domain, tmp_path):
        path = render_domain_svg(
            grid_domain, tmp_path / "domain.svg",
            query_boxes=[BBox(2, 2, 6, 6)], title="test",
        )
        root = ElementTree.parse(path).getroot()
        assert root.tag.endswith("svg")
        body = path.read_text()
        assert body.count("<line") == grid_domain.graph.edge_count
        assert "<rect" in body  # query box + background

    def test_network_svg_draws_walls_and_sensors(
        self, sampled_net, tmp_path
    ):
        path = render_network_svg(sampled_net, tmp_path / "net.svg")
        body = path.read_text()
        ElementTree.fromstring(body)  # well-formed
        assert body.count('stroke="#d4593b"') == sum(
            1 for u, v in sampled_net.walls
            if "__ext__" not in (u, v)
        )
        assert body.count('fill="#2458a8"') == len(sampled_net.sensors)

    def test_junctions_toggle(self, grid_domain, tmp_path):
        with_junctions = render_domain_svg(
            grid_domain, tmp_path / "a.svg", show_junctions=True
        ).read_text()
        without = render_domain_svg(
            grid_domain, tmp_path / "b.svg", show_junctions=False
        ).read_text()
        assert with_junctions.count("<circle") > without.count("<circle")


# ----------------------------------------------------------------------
# Deployment serialization
# ----------------------------------------------------------------------
class TestSerialization:
    def test_round_trip(self, organic_domain, sampled_net, tmp_path):
        path = tmp_path / "deployment.json"
        save_network(sampled_net, path)
        loaded = load_network(organic_domain, path)
        assert loaded.sensors == sampled_net.sensors
        assert loaded.walls == sampled_net.walls
        assert loaded.wall_owners == sampled_net.wall_owners
        assert loaded.region_count == sampled_net.region_count
        # Region partition identical.
        for junction in organic_domain.junctions:
            original = sampled_net.region_junctions(
                sampled_net.region_of(junction)
            )
            restored = loaded.region_junctions(loaded.region_of(junction))
            assert original == restored

    def test_counts_identical_after_reload(
        self, organic_domain, sampled_net, events, workload, tmp_path
    ):
        path = tmp_path / "deployment.json"
        save_network(sampled_net, path)
        loaded = load_network(organic_domain, path)
        region_ids = loaded.lower_regions(
            organic_domain.junctions_in_bbox(BBox(1.5, 1.5, 8.5, 8.5))
        )
        if not region_ids:
            pytest.skip("too coarse at this seed")
        form = loaded.build_form(events)
        boundary = loaded.region_boundary(region_ids)
        original_form = sampled_net.build_form(events)
        t = 0.5 * workload.horizon
        assert form.integrate_until(boundary, t) == pytest.approx(
            original_form.integrate_until(boundary, t)
        )

    def test_wrong_domain_rejected(self, sampled_net, tmp_path):
        other = MobilityDomain(
            organic_city(blocks=40, rng=np.random.default_rng(99))
        )
        path = tmp_path / "deployment.json"
        save_network(sampled_net, path)
        with pytest.raises(ConfigurationError):
            load_network(other, path)

    def test_not_a_network_file_rejected(self, organic_domain, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ConfigurationError):
            load_network(organic_domain, path)
