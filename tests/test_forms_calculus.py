"""Unit + property tests for the discrete exterior calculus helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphStructureError
from repro.forms import (
    DifferentialForm,
    circulation,
    coboundary,
    face_divergence,
    integrate_potential,
    is_exact,
)
from repro.planar import PlanarGraph


def make_grid(n=4) -> PlanarGraph:
    graph = PlanarGraph()
    for i in range(n):
        for j in range(n):
            graph.add_node((i, j), (float(i), float(j)))
    for i in range(n):
        for j in range(n):
            if i < n - 1:
                graph.add_edge((i, j), (i + 1, j))
            if j < n - 1:
                graph.add_edge((i, j), (i, j + 1))
    return graph


class TestCoboundary:
    def test_gradient_values(self):
        graph = make_grid(3)
        potential = {node: float(node[0]) for node in graph.nodes()}
        form = coboundary(graph, potential)
        assert form(((0, 0), (1, 0))) == 1.0  # east: +1
        assert form(((0, 0), (0, 1))) == 0.0  # north: flat

    def test_missing_nodes_default_zero(self):
        graph = make_grid(3)
        form = coboundary(graph, {(0, 0): 5.0})
        assert form(((0, 0), (1, 0))) == -5.0


class TestStokes:
    def test_exact_form_circulates_to_zero(self):
        graph = make_grid(4)
        rng = np.random.default_rng(0)
        potential = {node: float(rng.normal()) for node in graph.nodes()}
        form = coboundary(graph, potential)
        square = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert circulation(form, square) == pytest.approx(0.0)

    def test_exact_form_divergence_free(self):
        graph = make_grid(4)
        rng = np.random.default_rng(1)
        potential = {node: float(rng.normal()) for node in graph.nodes()}
        form = coboundary(graph, potential)
        divergence = face_divergence(graph, form)
        assert all(abs(v) < 1e-9 for v in divergence.values())

    def test_vortex_has_circulation(self):
        graph = make_grid(3)
        form = DifferentialForm()
        # A unit vortex around the first cell.
        for edge in [((0, 0), (1, 0)), ((1, 0), (1, 1)),
                     ((1, 1), (0, 1)), ((0, 1), (0, 0))]:
            form.set(edge, 1.0)
        loop = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert circulation(form, loop) == pytest.approx(4.0)
        assert not is_exact(graph, form)

    def test_degenerate_cycle(self):
        form = DifferentialForm()
        assert circulation(form, [(0, 0)]) == 0.0


class TestExactness:
    def test_coboundary_is_exact(self):
        graph = make_grid(4)
        rng = np.random.default_rng(2)
        potential = {node: float(rng.normal()) for node in graph.nodes()}
        assert is_exact(graph, coboundary(graph, potential))

    def test_potential_recovery(self):
        graph = make_grid(4)
        rng = np.random.default_rng(3)
        potential = {node: float(rng.normal()) for node in graph.nodes()}
        form = coboundary(graph, potential)
        recovered = integrate_potential(graph, form, root=(0, 0))
        offset = potential[(0, 0)] - recovered[(0, 0)]
        for node in graph.nodes():
            assert recovered[node] + offset == pytest.approx(potential[node])

    def test_disconnected_rejected(self):
        graph = make_grid(3)
        graph.add_node("island", (9, 9))
        with pytest.raises(GraphStructureError):
            is_exact(graph, DifferentialForm())

    def test_unknown_root_rejected(self):
        graph = make_grid(3)
        with pytest.raises(GraphStructureError):
            integrate_potential(graph, DifferentialForm(), root="ghost")

    def test_empty_graph(self):
        assert integrate_potential(PlanarGraph(), DifferentialForm()) == {}


class TestStokesProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(-10, 10, allow_nan=False), min_size=16, max_size=16
        ),
        loop_seed=st.integers(0, 1000),
    )
    def test_every_exact_form_circulation_free(self, values, loop_seed):
        """d∘d = 0, universally: any potential, any face loop."""
        graph = make_grid(4)
        potential = dict(zip(graph.nodes(), values))
        form = coboundary(graph, potential)
        from repro.planar import trace_faces

        faces = trace_faces(graph).interior_faces
        face = faces[loop_seed % len(faces)]
        assert circulation(form, list(face.cycle)) == pytest.approx(
            0.0, abs=1e-9
        )
