"""Unit tests for metrics, query workloads and the experiment harness."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.evaluation import (
    QueryWorkloadConfig,
    SMALL_CONFIG,
    Summary,
    evaluate,
    format_table,
    generate_queries,
    get_pipeline,
    queries_to_regions,
    ratio,
    relative_error,
)
from repro.evaluation.harness import STANDARD_AREA_FRACTIONS
from repro.query import TRANSIENT, UPPER


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(10, 8) == pytest.approx(0.2)
        assert relative_error(10, 12) == pytest.approx(0.2)

    def test_relative_error_zero_actual(self):
        assert relative_error(0, 5) is None

    def test_ratio(self):
        assert ratio(10, 15) == pytest.approx(1.5)
        assert ratio(0, 5) is None

    def test_summary_percentiles(self):
        summary = Summary.of([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.median == 3.0
        assert summary.p25 == 2.0
        assert summary.p75 == 4.0
        assert summary.count == 5

    def test_summary_empty(self):
        summary = Summary.of([])
        assert summary.count == 0
        assert str(summary) == "n/a"

    def test_format_table(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", float("nan")]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "n/a" in lines[3]


class TestQueryWorkload:
    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            QueryWorkloadConfig(n_queries=0)
        with pytest.raises(WorkloadError):
            QueryWorkloadConfig(area_fraction=0.0)
        with pytest.raises(WorkloadError):
            QueryWorkloadConfig(window_fraction=2.0)
        with pytest.raises(WorkloadError):
            QueryWorkloadConfig(aspect_low=2.0, aspect_high=1.0)

    def test_generated_queries_nonempty_regions(self, organic_domain):
        queries = generate_queries(
            organic_domain, 1000.0,
            QueryWorkloadConfig(n_queries=15, area_fraction=0.02, seed=1),
        )
        assert len(queries) == 15
        for query in queries:
            assert organic_domain.junctions_in_bbox(query.box)

    def test_area_respected(self, organic_domain):
        bounds = organic_domain.bounds
        queries = generate_queries(
            organic_domain, 1000.0,
            QueryWorkloadConfig(n_queries=10, area_fraction=0.05, seed=2),
        )
        for query in queries:
            assert query.box.area == pytest.approx(
                0.05 * bounds.area, rel=0.01
            )

    def test_temporal_window_length(self, organic_domain):
        horizon = 10_000.0
        queries = generate_queries(
            organic_domain, horizon,
            QueryWorkloadConfig(
                n_queries=5, area_fraction=0.05,
                window_fraction=0.25, seed=3,
            ),
        )
        for query in queries:
            assert query.t2 - query.t1 == pytest.approx(0.25 * horizon)
            assert 0 <= query.t1 <= query.t2 <= horizon

    def test_reproducible(self, organic_domain):
        config = QueryWorkloadConfig(n_queries=8, area_fraction=0.03, seed=4)
        first = generate_queries(organic_domain, 100.0, config)
        second = generate_queries(organic_domain, 100.0, config)
        assert first == second

    def test_queries_to_regions(self, organic_domain):
        queries = generate_queries(
            organic_domain, 100.0,
            QueryWorkloadConfig(n_queries=5, area_fraction=0.05, seed=5),
        )
        regions = queries_to_regions(organic_domain, queries)
        assert len(regions) == 5
        assert all(regions)


class TestHarness:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return get_pipeline(SMALL_CONFIG)

    def test_pipeline_memoised(self, pipeline):
        assert get_pipeline(SMALL_CONFIG) is pipeline

    def test_history_regions_built(self, pipeline):
        expected = len(STANDARD_AREA_FRACTIONS) * SMALL_CONFIG.history_per_fraction
        assert len(pipeline.history_regions) == expected

    def test_budget_for_fraction(self, pipeline):
        assert pipeline.budget_for_fraction(0.1) == max(
            int(round(0.1 * pipeline.domain.block_count)), 2
        )

    def test_network_cached(self, pipeline):
        first = pipeline.network("uniform", 8, seed=0)
        second = pipeline.network("uniform", 8, seed=0)
        assert first is second

    def test_different_seed_different_network(self, pipeline):
        a = pipeline.network("uniform", 8, seed=0)
        b = pipeline.network("uniform", 8, seed=1)
        assert a is not b

    def test_standard_queries_prefix_stability(self, pipeline):
        short = pipeline.standard_queries(0.0864, n=3)
        long = pipeline.standard_queries(0.0864, n=5)
        assert long[:3] == short

    def test_standard_queries_kind_does_not_change_geometry(self, pipeline):
        static = pipeline.standard_queries(0.0864, n=3)
        transient = pipeline.standard_queries(0.0864, kind=TRANSIENT, n=3)
        assert [q.box for q in static] == [q.box for q in transient]

    def test_exact_cached(self, pipeline):
        query = pipeline.standard_queries(0.0864, n=1)[0]
        first = pipeline.exact(query)
        second = pipeline.exact(query)
        assert first is second

    def test_exact_ignores_bound(self, pipeline):
        query = pipeline.standard_queries(0.0864, n=1)[0]
        assert (
            pipeline.exact(query).value
            == pipeline.exact(query.with_bound(UPPER)).value
        )

    def test_evaluate_report_fields(self, pipeline):
        queries = pipeline.standard_queries(0.1728, n=5)
        network = pipeline.network("quadtree", 12, seed=0)
        engine = pipeline.engine(network)
        report = evaluate(pipeline, engine.execute, queries, label="test")
        assert report.n_queries == 5
        assert 0.0 <= report.miss_rate <= 1.0
        assert report.label == "test"

    def test_selector_registry(self, pipeline):
        for name in ("uniform", "systematic", "stratified",
                     "kdtree", "quadtree", "submodular"):
            assert pipeline.selector(name) is not None

    def test_unknown_selector(self, pipeline):
        from repro.errors import SelectionError

        with pytest.raises(SelectionError):
            pipeline.selector("psychic")

    def test_baseline_cached_and_ingested(self, pipeline):
        baseline = pipeline.baseline(10, seed=0)
        assert pipeline.baseline(10, seed=0) is baseline
        query = pipeline.standard_queries(0.1728, n=1)[0]
        result = baseline.execute(query)  # would raise if not ingested
        assert result is not None
