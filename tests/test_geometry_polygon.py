"""Unit tests for repro.geometry.polygon."""

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    BBox,
    area,
    centroid,
    ensure_counter_clockwise,
    is_convex,
    is_counter_clockwise,
    perimeter,
    point_in_polygon,
    polygon_in_bbox,
    polygon_intersects_bbox,
    representative_point,
    signed_area,
)

UNIT_SQUARE = [(0, 0), (1, 0), (1, 1), (0, 1)]
TRIANGLE = [(0, 0), (4, 0), (0, 3)]
# An L-shape whose centroid lies inside; concave.
L_SHAPE = [(0, 0), (3, 0), (3, 1), (1, 1), (1, 3), (0, 3)]
# A U-shape whose centroid falls in the notch (outside the polygon).
U_SHAPE = [(0, 0), (5, 0), (5, 4), (4, 4), (4, 1), (1, 1), (1, 4), (0, 4)]


class TestArea:
    def test_signed_area_ccw_positive(self):
        assert signed_area(UNIT_SQUARE) == pytest.approx(1.0)

    def test_signed_area_cw_negative(self):
        assert signed_area(list(reversed(UNIT_SQUARE))) == pytest.approx(-1.0)

    def test_area_triangle(self):
        assert area(TRIANGLE) == pytest.approx(6.0)

    def test_degenerate(self):
        assert signed_area([(0, 0), (1, 1)]) == 0.0

    def test_orientation_helpers(self):
        assert is_counter_clockwise(UNIT_SQUARE)
        assert not is_counter_clockwise(list(reversed(UNIT_SQUARE)))

    def test_ensure_counter_clockwise(self):
        fixed = ensure_counter_clockwise(list(reversed(UNIT_SQUARE)))
        assert is_counter_clockwise(fixed)


class TestCentroid:
    def test_square_centroid(self):
        assert centroid(UNIT_SQUARE) == pytest.approx((0.5, 0.5))

    def test_triangle_centroid(self):
        assert centroid(TRIANGLE) == pytest.approx((4 / 3, 1.0))

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            centroid([])


class TestPointInPolygon:
    def test_interior(self):
        assert point_in_polygon((0.5, 0.5), UNIT_SQUARE)

    def test_exterior(self):
        assert not point_in_polygon((2, 2), UNIT_SQUARE)

    def test_boundary_edge(self):
        assert point_in_polygon((0.5, 0), UNIT_SQUARE)

    def test_vertex(self):
        assert point_in_polygon((0, 0), UNIT_SQUARE)

    def test_concave_notch_excluded(self):
        assert not point_in_polygon((2.5, 2.5), U_SHAPE)

    def test_concave_arm_included(self):
        assert point_in_polygon((0.5, 3.5), U_SHAPE)


class TestBBoxRelations:
    def test_polygon_in_bbox(self):
        assert polygon_in_bbox(UNIT_SQUARE, BBox(-1, -1, 2, 2))
        assert not polygon_in_bbox(UNIT_SQUARE, BBox(0.5, 0, 2, 2))

    def test_polygon_intersects_bbox_by_vertex(self):
        assert polygon_intersects_bbox(UNIT_SQUARE, BBox(0.5, 0.5, 3, 3))

    def test_polygon_intersects_bbox_box_inside(self):
        assert polygon_intersects_bbox(
            [(0, 0), (10, 0), (10, 10), (0, 10)], BBox(4, 4, 5, 5)
        )

    def test_polygon_disjoint_bbox(self):
        assert not polygon_intersects_bbox(UNIT_SQUARE, BBox(5, 5, 6, 6))

    def test_edge_crossing_counts(self):
        # Polygon edge slices through the box without any vertex inside.
        sliver = [(-1, 0.4), (2, 0.4), (2, 0.6), (-1, 0.6)]
        assert polygon_intersects_bbox(sliver, BBox(0, 0, 1, 1))


class TestConvexity:
    def test_square_convex(self):
        assert is_convex(UNIT_SQUARE)

    def test_l_shape_not_convex(self):
        assert not is_convex(L_SHAPE)

    def test_degenerate_not_convex(self):
        assert not is_convex([(0, 0), (1, 1)])


class TestRepresentativePoint:
    def test_convex_uses_centroid(self):
        assert representative_point(UNIT_SQUARE) == pytest.approx((0.5, 0.5))

    def test_concave_point_still_inside(self):
        point = representative_point(U_SHAPE)
        assert point_in_polygon(point, U_SHAPE)

    def test_l_shape_inside(self):
        point = representative_point(L_SHAPE)
        assert point_in_polygon(point, L_SHAPE)

    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            representative_point([(0, 0), (1, 1)])


class TestPerimeter:
    def test_unit_square(self):
        assert perimeter(UNIT_SQUARE) == pytest.approx(4.0)

    def test_triangle(self):
        assert perimeter(TRIANGLE) == pytest.approx(12.0)
