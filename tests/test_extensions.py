"""Unit tests for adaptive weights, energy model and map I/O."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, SelectionError, WorkloadError
from repro.geometry import BBox
from repro.mobility import (
    load_road_network,
    road_network_from_dict,
    save_road_network,
)
from repro.network import EnergyModel, RadioParameters
from repro.selection import (
    UniformSelector,
    query_frequency_weights,
    weighted_candidates,
)


# ----------------------------------------------------------------------
# Query-adaptive weights (§4.3)
# ----------------------------------------------------------------------
class TestAdaptiveWeights:
    def test_hot_blocks_weighted_higher(self, grid_domain):
        hot = grid_domain.junctions_in_bbox(BBox(0, 0, 5, 5))
        weights = query_frequency_weights(grid_domain, [hot, hot, hot])
        order = grid_domain.dual.interior_nodes
        hot_weights, cold_weights = [], []
        for block, weight in zip(order, weights):
            x, y = grid_domain.dual.position(block)
            (hot_weights if (x < 5 and y < 5) else cold_weights).append(weight)
        assert np.mean(hot_weights) > np.mean(cold_weights)

    def test_smoothing_keeps_cold_blocks_selectable(self, grid_domain):
        hot = grid_domain.junctions_in_bbox(BBox(0, 0, 3, 3))
        weights = query_frequency_weights(grid_domain, [hot], smoothing=0.5)
        assert np.all(weights > 0)

    def test_empty_history_rejected(self, grid_domain):
        with pytest.raises(SelectionError):
            query_frequency_weights(grid_domain, [])

    def test_negative_smoothing_rejected(self, grid_domain):
        hot = grid_domain.junctions_in_bbox(BBox(0, 0, 3, 3))
        with pytest.raises(SelectionError):
            query_frequency_weights(grid_domain, [hot], smoothing=-1.0)

    def test_weighted_candidates_bias_selection(self, grid_domain):
        hot = grid_domain.junctions_in_bbox(BBox(0, 0, 5, 5))
        candidates = weighted_candidates(
            grid_domain, [hot] * 5, smoothing=0.1
        )
        chosen = UniformSelector().select(
            candidates, 10, np.random.default_rng(0)
        )
        weight_of = dict(zip(candidates.ids, candidates.weights))
        chosen_mean = np.mean([weight_of[block] for block in chosen])
        overall_mean = float(candidates.weights.mean())
        # Picks concentrate on historically queried (heavy) blocks.
        assert chosen_mean > 1.5 * overall_mean


# ----------------------------------------------------------------------
# Energy model (§3.1 motivation)
# ----------------------------------------------------------------------
class TestEnergyModel:
    def test_radio_validation(self):
        with pytest.raises(ConfigurationError):
            RadioParameters(tx_electronics=-1)
        with pytest.raises(ConfigurationError):
            RadioParameters(path_loss_exponent=9)

    def test_transmit_grows_with_distance(self):
        radio = RadioParameters()
        assert radio.transmit(10.0) > radio.transmit(1.0)

    def test_centralized_updates_cost_more(
        self, sampled_net, events
    ):
        model = EnergyModel(sampled_net)
        observed = sampled_net.observed_events(events)
        central = model.centralized_updates(observed)
        local = model.in_network_updates(observed)
        # Long-range sync dominates short local hops (§3.1).
        assert central.total > 3 * local.total
        assert central.peak_sensor_energy > local.peak_sensor_energy

    def test_in_network_ignores_unsensed_events(self, sampled_net, events):
        model = EnergyModel(sampled_net)
        all_events_report = model.in_network_updates(events)
        observed_report = model.in_network_updates(
            sampled_net.observed_events(events)
        )
        assert all_events_report.total == observed_report.total

    def test_query_energy_scales_with_perimeter(self, sampled_net):
        model = EnergyModel(sampled_net)
        few = model.query_energy(list(sampled_net.sensors[:3]))
        many = model.query_energy(list(sampled_net.sensors[:12]))
        assert many > few

    def test_query_energy_empty(self, sampled_net):
        assert EnergyModel(sampled_net).query_energy([]) == 0.0


# ----------------------------------------------------------------------
# Map I/O (§4.2)
# ----------------------------------------------------------------------
def sample_map() -> dict:
    """A 3x3 grid with one footpath and one crossing flyover."""
    nodes = {
        f"n{i}{j}": [float(i), float(j)] for i in range(3) for j in range(3)
    }
    edges = []
    for i in range(3):
        for j in range(3):
            if i < 2:
                edges.append([f"n{i}{j}", f"n{i + 1}{j}", {"class": "primary"}])
            if j < 2:
                edges.append([f"n{i}{j}", f"n{i}{j + 1}", {"class": "primary"}])
    edges.append(["n00", "n22", {"class": "footway"}])  # filtered out
    # A flyover crossing the grid diagonally (no shared nodes).
    nodes["f1"] = [-0.5, 0.5]
    nodes["f2"] = [2.5, 1.5]
    edges.append(["f1", "f2", {"class": "motorway"}])
    return {"nodes": nodes, "edges": edges}


class TestMapIO:
    def test_vehicle_filter_drops_footways(self):
        graph = road_network_from_dict(
            sample_map(), planarize_crossings=False, prune_dead_ends=False
        )
        # No edge between the footway endpoints.
        assert not graph.has_edge("n00", "n22")

    def test_planarization_inserts_flyover_junctions(self):
        graph = road_network_from_dict(sample_map(), prune_dead_ends=False)
        # The flyover crosses two vertical grid streets: 2 new nodes.
        inserted = [n for n in graph.nodes() if isinstance(n, tuple)]
        assert len(inserted) >= 2

    def test_prune_removes_flyover_stubs(self):
        graph = road_network_from_dict(sample_map(), prune_dead_ends=True)
        assert all(graph.degree(n) >= 2 for n in graph.nodes())

    def test_round_trip(self, tmp_path, grid_domain):
        path = tmp_path / "city.json"
        save_road_network(grid_domain.graph, path)
        loaded = load_road_network(path, prune_dead_ends=False)
        assert loaded.node_count == grid_domain.graph.node_count
        assert loaded.edge_count == grid_domain.graph.edge_count

    def test_malformed_structure_rejected(self):
        with pytest.raises(WorkloadError):
            road_network_from_dict({"edges": []})
        with pytest.raises(WorkloadError):
            road_network_from_dict({"nodes": {"a": [0]}, "edges": []})
        with pytest.raises(WorkloadError):
            road_network_from_dict(
                {"nodes": {"a": [0, 0]}, "edges": [["a", "ghost"]]}
            )

    def test_degenerate_after_filtering_rejected(self):
        raw = {
            "nodes": {"a": [0, 0], "b": [1, 0]},
            "edges": [["a", "b", {"class": "footway"}]],
        }
        with pytest.raises(WorkloadError):
            road_network_from_dict(raw)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "map.json"
        path.write_text(json.dumps(sample_map()))
        graph = load_road_network(path)
        assert graph.node_count >= 9
