"""Property-based tests of the SensorNetwork region/counting machinery.

For *any* subset of sensing edges chosen as walls, and *any* movement
history, the wall-defined regions must partition the junctions and the
boundary-integrated counts must equal exact occupancy on every region
union.  This is the sampled-graph correctness claim of the paper made
universal: a sampled network is never wrong about its own regions, only
coarser.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.forms import TrackingForm
from repro.mobility import EXT, MobilityDomain, grid_city
from repro.planar import canonical_edge
from repro.sampling import wall_network
from repro.trajectories import Trip, occupancy_count, trip_events

#: Small fixed domain shared by every example (5x5 grid).
DOMAIN = MobilityDomain(grid_city(rows=5, cols=5, jitter=0.0,
                                  drop_fraction=0.0))
ALL_SENSING_EDGES = sorted(
    (canonical_edge(u, v) for u, v in DOMAIN.sensing_edges()), key=repr
)
JUNCTIONS = list(DOMAIN.junctions)


wall_subsets = st.sets(
    st.sampled_from(range(len(ALL_SENSING_EDGES))), max_size=40
)


@st.composite
def random_trips(draw):
    """A handful of shortest-path trips with integer timestamps."""
    n = draw(st.integers(1, 4))
    trips = []
    for object_id in range(n):
        origin = JUNCTIONS[draw(st.integers(0, len(JUNCTIONS) - 1))]
        destination = JUNCTIONS[draw(st.integers(0, len(JUNCTIONS) - 1))]
        depart = float(draw(st.integers(0, 50)))
        path = DOMAIN.graph.shortest_path(origin, destination)
        visits = [(path[0], depart)]
        t = depart
        for node in path[1:]:
            t += 1.0
            visits.append((node, t))
        dwell = float(draw(st.integers(1, 20)))
        visits.append((visits[-1][0], t + dwell))
        trips.append(Trip(object_id=object_id, visits=tuple(visits)))
    return trips


class TestWallPartitionProperties:
    @settings(max_examples=80, deadline=None)
    @given(subset=wall_subsets)
    def test_regions_partition_junctions(self, subset):
        walls = [ALL_SENSING_EDGES[i] for i in subset]
        network = wall_network(DOMAIN, walls, sensors=[0])
        seen = set()
        for region in network.region_ids:
            junctions = network.region_junctions(region)
            assert not (seen & junctions)
            seen |= junctions
        seen |= network.region_junctions(network.ext_region)
        assert seen == set(JUNCTIONS)

    @settings(max_examples=80, deadline=None)
    @given(subset=wall_subsets)
    def test_boundary_edges_separate_regions(self, subset):
        walls = [ALL_SENSING_EDGES[i] for i in subset]
        network = wall_network(DOMAIN, walls, sensors=[0])
        regions = network.region_ids
        if not regions:
            return
        chosen = regions[: max(1, len(regions) // 2)]
        for tail, head in network.region_boundary(chosen):
            head_region = network.region_of(head)
            tail_region = (
                network.ext_region
                if tail == EXT
                else network.region_of(tail)
            )
            assert head_region in chosen
            assert tail_region not in chosen

    @settings(max_examples=60, deadline=None)
    @given(subset=wall_subsets, trips=random_trips(),
           probe=st.integers(0, 120))
    def test_counts_exact_on_any_region_union(self, subset, trips, probe):
        """Theorem 4.2 holds for every wall configuration."""
        walls = [ALL_SENSING_EDGES[i] for i in subset]
        network = wall_network(DOMAIN, walls, sensors=[0])
        regions = network.region_ids
        if not regions:
            return
        chosen = regions[::2] or regions[:1]

        form = TrackingForm()
        for trip in trips:
            for event in trip_events(DOMAIN, trip):
                if canonical_edge(event.tail, event.head) in network.walls:
                    form.record(event.tail, event.head, event.t)

        junctions = set()
        for region in chosen:
            junctions |= network.region_junctions(region)
        boundary = network.region_boundary(chosen)
        estimate = form.integrate_until(boundary, float(probe))
        truth = occupancy_count(trips, junctions, float(probe))
        assert estimate == truth

    @settings(max_examples=50, deadline=None)
    @given(subset=wall_subsets)
    def test_lower_regions_nest_in_query(self, subset):
        walls = [ALL_SENSING_EDGES[i] for i in subset]
        network = wall_network(DOMAIN, walls, sensors=[0])
        from repro.geometry import BBox

        query = DOMAIN.junctions_in_bbox(BBox(2, 2, 8, 8))
        for region in network.lower_regions(query):
            assert network.region_junctions(region) <= query

    @settings(max_examples=40, deadline=None)
    @given(subset=wall_subsets, trips=random_trips(),
           probe=st.integers(0, 120))
    def test_bound_sandwich(self, subset, trips, probe):
        """lower-bound count <= true count <= upper-bound count, for
        every wall configuration and movement history."""
        from repro.geometry import BBox

        walls = [ALL_SENSING_EDGES[i] for i in subset]
        network = wall_network(DOMAIN, walls, sensors=[0])
        query = DOMAIN.junctions_in_bbox(BBox(2, 2, 8, 8))

        form = TrackingForm()
        for trip in trips:
            for event in trip_events(DOMAIN, trip):
                if canonical_edge(event.tail, event.head) in network.walls:
                    form.record(event.tail, event.head, event.t)

        truth = occupancy_count(trips, query, float(probe))
        lower = network.lower_regions(query)
        if lower:
            estimate = form.integrate_until(
                network.region_boundary(lower), float(probe)
            )
            assert estimate <= truth
        upper, covered = network.upper_regions(query)
        if covered and upper:
            estimate = form.integrate_until(
                network.region_boundary(upper), float(probe)
            )
            assert estimate >= truth

    @settings(max_examples=50, deadline=None)
    @given(subset=wall_subsets)
    def test_upper_regions_cover_query_when_covered(self, subset):
        walls = [ALL_SENSING_EDGES[i] for i in subset]
        network = wall_network(DOMAIN, walls, sensors=[0])
        from repro.geometry import BBox

        query = DOMAIN.junctions_in_bbox(BBox(2, 2, 8, 8))
        regions, covered = network.upper_regions(query)
        if covered:
            union = set()
            for region in regions:
                union |= network.region_junctions(region)
            assert query <= union
