"""Unit tests for face tracing (repro.planar.faces)."""

import numpy as np
import pytest

from repro.errors import PlanarityError
from repro.planar import (
    PlanarGraph,
    euler_characteristic,
    trace_faces,
)


def make_grid(n: int) -> PlanarGraph:
    graph = PlanarGraph()
    for i in range(n):
        for j in range(n):
            graph.add_node((i, j), (float(i), float(j)))
    for i in range(n):
        for j in range(n):
            if i < n - 1:
                graph.add_edge((i, j), (i + 1, j))
            if j < n - 1:
                graph.add_edge((i, j), (i, j + 1))
    return graph


class TestGridFaces:
    def test_face_count(self):
        faces = trace_faces(make_grid(4))
        # 3x3 interior cells + outer face.
        assert len(faces.faces) == 10
        assert len(faces.interior_faces) == 9

    def test_euler_characteristic(self):
        graph = make_grid(5)
        assert euler_characteristic(graph, trace_faces(graph)) == 2

    def test_interior_faces_ccw_positive_area(self):
        faces = trace_faces(make_grid(4))
        for face in faces.interior_faces:
            assert face.signed_area == pytest.approx(1.0)

    def test_outer_face_negative_area(self):
        faces = trace_faces(make_grid(4))
        outer = faces.faces[faces.outer_face_id]
        assert outer.is_outer
        assert outer.signed_area == pytest.approx(-9.0)

    def test_total_area_balances(self):
        # Interior areas sum to |outer area|.
        faces = trace_faces(make_grid(6))
        outer = faces.faces[faces.outer_face_id]
        assert faces.total_interior_area() == pytest.approx(-outer.signed_area)

    def test_every_directed_edge_has_a_face(self):
        graph = make_grid(4)
        faces = trace_faces(graph)
        for u, v in graph.edges():
            assert faces.face_of_edge(u, v) is not None
            assert faces.face_of_edge(v, u) is not None

    def test_adjacent_faces_differ_for_interior_edge(self):
        graph = make_grid(4)
        faces = trace_faces(graph)
        left, right = faces.adjacent_faces((1, 1), (2, 1))
        assert left.id != right.id

    def test_unknown_edge_raises(self):
        faces = trace_faces(make_grid(3))
        with pytest.raises(PlanarityError):
            faces.face_of_edge((0, 0), (99, 99))


class TestBoundaryWalk:
    def test_boundary_edges_close_cycle(self):
        faces = trace_faces(make_grid(3))
        face = faces.interior_faces[0]
        edges = face.boundary_edges()
        assert len(edges) == 4
        heads = [e[1] for e in edges]
        tails = [e[0] for e in edges]
        assert sorted(map(str, heads)) == sorted(map(str, tails))

    def test_interior_point_inside(self):
        faces = trace_faces(make_grid(3))
        for face in faces.interior_faces:
            x, y = face.interior_point()
            box = face.polygon
            assert min(p[0] for p in box) < x < max(p[0] for p in box)

    def test_outer_interior_point_raises(self):
        faces = trace_faces(make_grid(3))
        with pytest.raises(PlanarityError):
            faces.faces[faces.outer_face_id].interior_point()


class TestLocate:
    def test_locate_interior(self):
        faces = trace_faces(make_grid(4))
        face = faces.locate((1.5, 2.5))
        assert face is not None
        assert face.polygon is not None
        xs = [p[0] for p in face.polygon]
        ys = [p[1] for p in face.polygon]
        assert min(xs) <= 1.5 <= max(xs)
        assert min(ys) <= 2.5 <= max(ys)

    def test_locate_outside_returns_none(self):
        faces = trace_faces(make_grid(4))
        assert faces.locate((50.0, 50.0)) is None

    def test_locate_random_points(self):
        faces = trace_faces(make_grid(5))
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = tuple(rng.uniform(0.05, 3.95, 2))
            face = faces.locate(p)
            assert face is not None


class TestBridges:
    def test_bridge_edge_same_face_both_sides(self):
        # A triangle with a dangling edge (bridge).
        graph = PlanarGraph.from_edges(
            {0: (0, 0), 1: (2, 0), 2: (1, 2), 3: (3, 2)},
            [(0, 1), (1, 2), (2, 0), (1, 3)],
        )
        faces = trace_faces(graph)
        left, right = faces.adjacent_faces(1, 3)
        assert left.id == right.id  # bridge borders the outer face twice
        assert euler_characteristic(graph, faces) == 2
