"""Unit tests for snapshot differential forms (Eq. 7, Theorem 4.1)."""

import pytest

from repro.errors import QueryError
from repro.forms import DifferentialForm, SnapshotForm


class TestDifferentialForm:
    def test_antisymmetry(self):
        form = DifferentialForm()
        form.set(("a", "b"), 3.0)
        assert form(("a", "b")) == 3.0
        assert form(("b", "a")) == -3.0

    def test_set_via_reverse_direction(self):
        form = DifferentialForm()
        form.set(("b", "a"), 2.0)
        assert form(("a", "b")) == -2.0

    def test_add_accumulates(self):
        form = DifferentialForm()
        form.add(("a", "b"), 1.0)
        form.add(("b", "a"), 1.0)
        assert form(("a", "b")) == 0.0

    def test_unknown_edge_zero(self):
        assert DifferentialForm()(("x", "y")) == 0.0

    def test_integrate(self):
        form = DifferentialForm()
        form.set(("a", "b"), 2.0)
        form.set(("b", "c"), 3.0)
        chain = [(("a", "b"), 1), (("b", "c"), 1), (("c", "a"), 1)]
        assert form.integrate(chain) == 5.0

    def test_support(self):
        form = DifferentialForm()
        form.set(("a", "b"), 1.0)
        form.set(("c", "d"), 0.0)
        assert len(list(form.support())) == 1


class TestSnapshotForm:
    def test_record_and_read(self):
        form = SnapshotForm()
        form.record("u", "v")
        assert form.xi_plus(("u", "v")) == 1
        assert form.xi_minus(("u", "v")) == 0
        assert form.xi_plus(("v", "u")) == 0
        assert form.xi_minus(("v", "u")) == 1

    def test_net_antisymmetric(self):
        form = SnapshotForm()
        form.record("u", "v", 3)
        form.record("v", "u", 1)
        assert form.net(("u", "v")) == 2
        assert form.net(("v", "u")) == -2

    def test_negative_count_rejected(self):
        with pytest.raises(QueryError):
            SnapshotForm().record("u", "v", -1)

    def test_theorem_4_1_example(self):
        """Fig. 8b: object T moves from face sigma to tau across edge c.

        With the directed-edge convention (tail, head) = crossing toward
        the head's face, the count inside tau is +1 and sigma nets 0
        after T previously entered sigma from outside.
        """
        form = SnapshotForm()
        # T enters sigma from the external world across edge (ext, s).
        form.record("ext", "s")
        # T moves from sigma to tau.
        form.record("s", "t")
        # Count in tau: boundary = the single inward edge (s, t).
        assert form.integrate_edges([("s", "t")]) == 1
        # Count in sigma: inward edges (ext, s) and (t, s).
        assert form.integrate_edges([("ext", "s"), ("t", "s")]) == 0
        # Count in the union {sigma, tau}: inward edge (ext, s) only.
        assert form.integrate_edges([("ext", "s")]) == 1

    def test_double_counting_cancels(self):
        """An object exiting and re-entering is counted once (§3.1.2)."""
        form = SnapshotForm()
        form.record("out", "in")   # enter
        form.record("in", "out")   # leave
        form.record("out", "in")   # re-enter
        assert form.integrate_edges([("out", "in")]) == 1

    def test_integrate_with_weights(self):
        form = SnapshotForm()
        form.record("a", "b", 2)
        assert form.integrate([(("a", "b"), 2)]) == 4
        assert form.integrate([(("b", "a"), 1)]) == -2

    def test_counters(self):
        form = SnapshotForm()
        form.record("a", "b")
        form.record("b", "a")
        form.record("c", "d", 5)
        assert form.edge_count == 2
        assert form.total_crossings == 7
