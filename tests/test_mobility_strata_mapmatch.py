"""Unit tests for strata and map matching."""

import numpy as np
import pytest

from repro.errors import SelectionError, WorkloadError
from repro.geometry import BBox
from repro.mobility import MapMatcher, grid_strata, voronoi_strata


class TestVoronoiStrata:
    def test_weights_sum_to_one(self):
        strata = voronoi_strata(BBox(0, 0, 10, 10), districts=6,
                                rng=np.random.default_rng(0))
        assert strata.area_weights.sum() == pytest.approx(1.0)
        assert strata.count == 6

    def test_assignment_nearest_seed(self):
        strata = voronoi_strata(BBox(0, 0, 10, 10), districts=4,
                                rng=np.random.default_rng(1))
        labels = strata.assign([tuple(s) for s in strata.seeds])
        assert list(labels) == list(range(4))

    def test_assign_empty(self):
        strata = voronoi_strata(BBox(0, 0, 10, 10), districts=3,
                                rng=np.random.default_rng(0))
        assert len(strata.assign([])) == 0

    def test_groups_partition_points(self):
        strata = voronoi_strata(BBox(0, 0, 10, 10), districts=5,
                                rng=np.random.default_rng(2))
        rng = np.random.default_rng(3)
        points = [tuple(p) for p in rng.uniform(0, 10, size=(40, 2))]
        groups = strata.groups(points)
        total = sorted(i for members in groups.values() for i in members)
        assert total == list(range(40))

    def test_invalid_district_count(self):
        with pytest.raises(SelectionError):
            voronoi_strata(BBox(0, 0, 1, 1), districts=0)


class TestGridStrata:
    def test_uniform_weights(self):
        strata = grid_strata(BBox(0, 0, 10, 10), rows=2, cols=3)
        assert strata.count == 6
        assert np.allclose(strata.area_weights, 1 / 6)

    def test_assignment_respects_cells(self):
        strata = grid_strata(BBox(0, 0, 10, 10), rows=2, cols=2)
        # Point in the lower-left quadrant maps to the lower-left seed.
        label = strata.assign_one((1, 1))
        sx, sy = strata.seeds[label]
        assert sx < 5 and sy < 5

    def test_invalid_shape(self):
        with pytest.raises(SelectionError):
            grid_strata(BBox(0, 0, 1, 1), rows=0)


class TestMapMatcher:
    def test_nearest_node(self, grid_domain):
        matcher = MapMatcher(grid_domain.graph)
        node = matcher.nearest_node((0.05, 0.05))
        assert grid_domain.graph.position(node) == (0.0, 0.0)

    def test_match_fills_path_gaps(self, grid_domain):
        matcher = MapMatcher(grid_domain.graph)
        # Two distant raw points: result must be a connected junction walk.
        sequence = matcher.match([(0.0, 0.0), (10.0, 10.0)])
        assert len(sequence) >= 2
        for a, b in zip(sequence, sequence[1:]):
            assert grid_domain.graph.has_edge(a, b)

    def test_match_collapses_duplicates(self, grid_domain):
        matcher = MapMatcher(grid_domain.graph)
        sequence = matcher.match([(0.0, 0.0), (0.1, 0.1), (0.05, 0.0)])
        assert len(sequence) == 1

    def test_match_empty(self, grid_domain):
        assert MapMatcher(grid_domain.graph).match([]) == []

    def test_match_timed_interpolates(self, grid_domain):
        matcher = MapMatcher(grid_domain.graph)
        timed = matcher.match_timed([((0.0, 0.0), 0.0), ((10.0, 0.0), 60.0)])
        times = [t for _, t in timed]
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(60.0)
        assert all(b >= a for a, b in zip(times, times[1:]))
        # 7 junctions along the bottom row of the 7x7 grid.
        assert len(timed) == 7

    def test_match_timed_rejects_decreasing_times(self, grid_domain):
        matcher = MapMatcher(grid_domain.graph)
        with pytest.raises(WorkloadError):
            matcher.match_timed([((0, 0), 5.0), ((1, 0), 1.0)])

    def test_match_timed_dwell_preserves_arrival_and_departure(
        self, grid_domain
    ):
        matcher = MapMatcher(grid_domain.graph)
        timed = matcher.match_timed(
            [((0, 0), 0.0), ((0.05, 0), 4.0), ((0.0, 0.05), 9.0)]
        )
        # One junction, dwelling 0.0 -> 9.0, encoded as two visits.
        assert len(timed) == 2
        assert timed[0][0] == timed[1][0]
        assert timed[0][1] == 0.0
        assert timed[1][1] == 9.0
