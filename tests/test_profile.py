"""Continuous profiling layer and benchmark-trend tracker.

Covers:

- :class:`repro.obs.StackTable` aggregation, the collapsed-stack text
  round trip, and the worker merge identity (sum of per-worker tables
  == merged table);
- speedscope JSON export (schema-level validation: frame interning,
  sample indices in range, weights aligned and summing to the total);
- Chrome-trace counter tracks merging cleanly with the multi-pid
  swimlanes of :meth:`~repro.obs.Tracer.to_chrome_trace`;
- the sampler itself: span attribution via the per-thread tracer
  stacks, tracemalloc watermarks, the finalizer-owned thread lifecycle
  (stop / GC / ``framework.close()``);
- engine integration: ``explain()`` per-stage self time, slow flight
  records carrying ``peak_rss_bytes``/``alloc_peak_bytes`` and the
  profile slice, sharded workers shipping their stack tables home
  under the grafted ``worker.run`` span paths;
- the benchmark-trend tracker (:mod:`repro.evaluation.benchtrend`):
  direction classification, per-cell verdicts, snapshot history and
  the deterministic ``--check`` gate.
"""

from __future__ import annotations

import gc
import json
import os
import threading
import time
import tracemalloc

import pytest

from repro.core import FrameworkConfig, InNetworkFramework
from repro.errors import ConfigurationError
from repro.evaluation.benchtrend import (
    build_trend,
    classify,
    collect_cells,
    compare,
    flatten_bench,
    render_html,
    render_markdown,
)
from repro.geometry import BBox
from repro.mobility import grid_city
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    NULL_INSTRUMENTATION,
    Profiler,
    StackTable,
    Tracer,
    memory_snapshot,
    overlay_counters,
)
from repro.obs.profile import COUNTER_SAMPLES, SPAN_PREFIX
from repro.query import RangeQuery
from repro.trajectories import WorkloadConfig, generate_workload

HORIZON = 86400.0


def _table(hz: float = 100.0) -> StackTable:
    table = StackTable(hz=hz)
    table.add(("query.execute", "query.integrate"), ("a", "b", "c"), 3)
    table.add(("query.execute",), ("a", "b"), 2)
    table.add((), ("main",), 1)
    return table


# ----------------------------------------------------------------------
# StackTable aggregation + wire formats
# ----------------------------------------------------------------------
class TestStackTable:
    def test_counts_are_additive(self):
        table = StackTable(hz=50.0)
        table.add(("s",), ("f",))
        table.add(("s",), ("f",), 4)
        assert table.counts[(("s",), ("f",))] == 5
        assert table.total == 5
        assert len(table) == 1

    def test_hz_validated(self):
        with pytest.raises(ValueError):
            StackTable(hz=0.0)

    def test_self_seconds_by_span(self):
        table = _table(hz=100.0)
        seconds = table.self_seconds_by_span()
        assert seconds[("query.execute", "query.integrate")] == 0.03
        assert seconds[("query.execute",)] == 0.02
        assert seconds[()] == 0.01

    def test_leaf_self_seconds_groups_by_innermost(self):
        leafs = _table(hz=100.0).leaf_self_seconds()
        assert leafs["query.integrate"] == 0.03
        assert leafs["query.execute"] == 0.02
        assert leafs["(no span)"] == 0.01

    def test_top_rows_ranked_with_share(self):
        rows = _table().top_rows(2)
        assert len(rows) == 2
        assert rows[0]["samples"] == 3
        assert rows[0]["span_path"] == "query.execute > query.integrate"
        assert rows[0]["frame"] == "c"
        assert rows[0]["share"] == pytest.approx(0.5)

    def test_dict_round_trip(self):
        table = _table()
        clone = StackTable.from_dict(table.as_dict())
        assert clone.counts == table.counts
        assert clone.hz == table.hz

    def test_drain_clears(self):
        table = _table()
        payload = table.drain()
        assert payload["total"] == 6
        assert table.total == 0 and len(table) == 0

    def test_collapsed_round_trip(self):
        table = _table()
        text = table.to_collapsed()
        # span components carry the marker prefix; counts close lines
        assert f"{SPAN_PREFIX}query.execute;" in text
        clone = StackTable.from_collapsed(text, hz=table.hz)
        assert clone.counts == table.counts

    def test_collapsed_empty(self):
        assert StackTable(hz=1.0).to_collapsed() == ""
        assert StackTable.from_collapsed("").counts == {}

    def test_merge_identity_sum_of_workers(self):
        """The cross-process contract: merging per-worker tables gives
        the same table a single observer would have built."""
        worker_a = StackTable(hz=97.0)
        worker_a.add(("worker.run",), ("fa",), 2)
        worker_a.add(("worker.run", "query.integrate"), ("fb",), 1)
        worker_b = StackTable(hz=97.0)
        worker_b.add(("worker.run",), ("fa",), 3)
        worker_b.add(("worker.run",), ("fc",), 4)

        merged = StackTable(hz=97.0)
        merged.merge(worker_a.as_dict())
        merged.merge(worker_b.as_dict())

        expected = {}
        for worker in (worker_a, worker_b):
            for key, count in worker.counts.items():
                expected[key] = expected.get(key, 0) + count
        assert merged.counts == expected
        assert merged.total == worker_a.total + worker_b.total

    def test_merge_prefix_nests_span_paths(self):
        worker = StackTable(hz=97.0)
        worker.add(("worker.run", "query.integrate"), ("f",), 2)
        parent = StackTable(hz=97.0)
        parent.merge(worker, prefix=("query.execute_sharded",
                                     "sharded.scatter"))
        (key,) = parent.counts
        assert key[0] == ("query.execute_sharded", "sharded.scatter",
                          "worker.run", "query.integrate")


# ----------------------------------------------------------------------
# speedscope export
# ----------------------------------------------------------------------
class TestSpeedscope:
    def test_schema_shape(self):
        doc = _table(hz=100.0).to_speedscope(name="t")
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        assert isinstance(doc["shared"]["frames"], list)
        assert all(
            isinstance(frame, dict) and "name" in frame
            for frame in doc["shared"]["frames"]
        )
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "seconds"
        assert len(profile["samples"]) == len(profile["weights"])
        n_frames = len(doc["shared"]["frames"])
        for sample in profile["samples"]:
            assert all(0 <= index < n_frames for index in sample)

    def test_weights_sum_to_total_seconds(self):
        table = _table(hz=100.0)
        doc = table.to_speedscope()
        (profile,) = doc["profiles"]
        assert sum(profile["weights"]) == pytest.approx(
            table.total / table.hz
        )
        assert profile["endValue"] == pytest.approx(table.total / table.hz)
        assert profile["startValue"] == 0.0

    def test_span_components_become_outer_frames(self):
        doc = _table().to_speedscope()
        frames = doc["shared"]["frames"]
        span_indices = {
            i for i, frame in enumerate(frames)
            if frame["name"].startswith(SPAN_PREFIX)
        }
        assert span_indices  # span frames exist
        (profile,) = doc["profiles"]
        for sample in profile["samples"]:
            # span frames, if any, strictly precede code frames
            seen_code = False
            for index in sample:
                if index in span_indices:
                    assert not seen_code
                else:
                    seen_code = True

    def test_json_serializable(self):
        json.dumps(_table().to_speedscope())


# ----------------------------------------------------------------------
# Chrome-trace counter overlay
# ----------------------------------------------------------------------
class TestChromeCounters:
    def test_counter_events_shape(self):
        profiler = Profiler(hz=500.0)
        profiler.sample_once()
        events = profiler.chrome_counter_events(origin=0.0, pid=1234)
        assert events
        for event in events:
            assert event["ph"] == "C"
            assert event["pid"] == 1234
            assert event["name"] == COUNTER_SAMPLES
            assert "threads" in event["args"]

    def test_overlay_merges_with_multi_pid_swimlanes(self):
        """Counter tracks must coexist with grafted worker lanes: the
        merged trace keeps one lane per worker pid and gains the
        parent-pid counter series."""
        tracer = Tracer()
        with tracer.span("query.execute_sharded"):
            with tracer.span("sharded.scatter") as scatter:
                pass
        foreign = {
            "name": "worker.run",
            "start": tracer.origin + 1e-4,
            "end": tracer.origin + 2e-4,
            "attributes": {},
            "pid": 999_999,
            "tid": 2,
        }
        tracer.graft([foreign], under=scatter)

        profiler = Profiler(tracer=tracer, hz=500.0)
        profiler.sample_once()

        trace = tracer.to_chrome_trace()
        span_pids = {
            event["pid"]
            for event in trace["traceEvents"]
            if event.get("ph") == "X"
        }
        assert 999_999 in span_pids  # worker lane present
        overlay_counters(trace, profiler, origin=tracer.origin)
        counters = [
            event for event in trace["traceEvents"]
            if event.get("ph") == "C"
        ]
        assert counters
        assert all(event["pid"] == os.getpid() for event in counters)
        # the span lanes survived the merge untouched
        assert span_pids <= {
            event["pid"] for event in trace["traceEvents"]
        }
        json.dumps(trace)


# ----------------------------------------------------------------------
# The sampler: attribution, memory, lifecycle
# ----------------------------------------------------------------------
class TestSampler:
    def test_sample_attributed_to_open_span_path(self):
        tracer = Tracer()
        profiler = Profiler(tracer=tracer, hz=500.0)
        with tracer.span("outer"):
            with tracer.span("inner"):
                profiler.sample_once()
        paths = {path for path, _frames in profiler.table.counts}
        assert ("outer", "inner") in paths

    def test_sample_without_tracer_lands_bare(self):
        profiler = Profiler(hz=500.0)
        profiler.sample_once()
        assert profiler.table.total >= 1
        assert all(
            path == () for path, _ in profiler.table.counts
        )

    def test_own_frames_excluded(self):
        profiler = Profiler(hz=500.0)
        profiler.sample_once()
        for _path, frames in profiler.table.counts:
            # the sampler's own sample_once frame is filtered out
            assert not any("(profile.py:" in frame for frame in frames)

    def test_hz_validated(self):
        with pytest.raises(ValueError):
            Profiler(hz=0.0)
        with pytest.raises(ValueError):
            Profiler(hz=20_000.0)

    def test_background_thread_collects(self):
        tracer = Tracer()
        profiler = Profiler(tracer=tracer, hz=500.0).start()
        try:
            deadline = time.perf_counter() + 2.0
            with tracer.span("busy"):
                while (
                    profiler.table.total == 0
                    and time.perf_counter() < deadline
                ):
                    time.sleep(0.002)
            assert profiler.table.total > 0
        finally:
            profiler.stop()

    def test_memory_watermarks_per_span_path(self):
        tracer = Tracer()
        profiler = Profiler(tracer=tracer, hz=500.0, memory=True).start()
        try:
            with tracer.span("alloc.heavy"):
                ballast = [bytes(1024) for _ in range(2000)]
                profiler.sample_once()
                del ballast
        finally:
            profiler.stop()
        assert not tracemalloc.is_tracing()  # profiler owned the start
        peaks = {
            path: peak
            for path, peak in profiler.mem_peak_bytes.items()
            if "alloc.heavy" in path
        }
        assert peaks
        assert max(peaks.values()) > 1024 * 1000

    def test_memory_snapshot_fields(self):
        snapshot = memory_snapshot()
        assert snapshot["peak_rss_bytes"] is None or (
            snapshot["peak_rss_bytes"] > 0
        )
        assert snapshot["alloc_peak_bytes"] is None  # not tracing here

    def test_stop_joins_thread_and_is_idempotent(self):
        profiler = Profiler(hz=500.0).start()
        sampler = profiler._thread
        assert profiler.running and sampler.is_alive()
        profiler.stop()
        assert not profiler.running
        assert not sampler.is_alive()
        profiler.stop()  # idempotent
        profiler.start()  # restartable
        assert profiler.running
        profiler.stop()

    def test_finalizer_reaps_abandoned_thread(self):
        profiler = Profiler(hz=500.0).start()
        sampler = profiler._thread
        del profiler
        gc.collect()
        sampler.join(timeout=5.0)
        assert not sampler.is_alive()

    def test_context_manager(self):
        with Profiler(hz=500.0) as profiler:
            assert profiler.running
        assert not profiler.running

    def test_timeline_bounded(self):
        profiler = Profiler(hz=500.0, max_timeline=4)
        for _ in range(10):
            profiler.sample_once()
        assert len(profiler.timeline) == 4

    def test_write_outputs(self, tmp_path):
        tracer = Tracer()
        profiler = Profiler(tracer=tracer, hz=500.0)
        with tracer.span("w"):
            profiler.sample_once()
        paths = profiler.write(str(tmp_path / "prof"))
        collapsed = open(paths["collapsed"]).read()
        assert StackTable.from_collapsed(collapsed).counts == (
            profiler.table.counts
        )
        doc = json.load(open(paths["speedscope"]))
        assert doc["profiles"][0]["type"] == "sampled"


# ----------------------------------------------------------------------
# Config + framework lifecycle
# ----------------------------------------------------------------------
class TestFrameworkIntegration:
    @pytest.fixture(scope="class")
    def road(self):
        return grid_city(rows=6, cols=6, jitter=0.0, drop_fraction=0.0)

    def _deploy(self, road, **kwargs):
        framework = InNetworkFramework.from_road_graph(road)
        framework.deploy(FrameworkConfig(budget=10, seed=3, **kwargs))
        workload = generate_workload(
            framework.domain,
            WorkloadConfig(n_trips=120, horizon_days=1.0, seed=5),
        )
        framework.ingest_trips(workload.trips)
        return framework

    def test_profile_hz_validated(self):
        with pytest.raises(ConfigurationError, match="profile_hz"):
            FrameworkConfig(profile_hz=-1.0)
        with pytest.raises(ConfigurationError, match="profile_hz"):
            FrameworkConfig(profile_hz=1001.0)
        with pytest.raises(ConfigurationError, match="profile_memory"):
            FrameworkConfig(profile_memory=True)

    def test_deploy_starts_profiler_null_obs_not_mutated(self, road):
        framework = self._deploy(road, profile_hz=200.0)
        try:
            assert framework.profiler is not None
            assert framework.profiler.running
            assert framework.profiler.hz == 200.0
            # the shared null bundle must never grow a profiler
            assert NULL_INSTRUMENTATION.profiler is None
            assert framework.obs is not NULL_INSTRUMENTATION
            assert framework.obs.tracer.enabled
        finally:
            framework.close()
        assert not framework.profiler.running

    def test_redeploy_without_profile_stops_sampler(self, road):
        framework = self._deploy(road, profile_hz=200.0)
        profiler = framework.profiler
        framework.deploy(FrameworkConfig(budget=10, seed=3))
        assert not profiler.running
        framework.close()

    def test_explain_reports_profile_self_time(self, road):
        framework = self._deploy(road, profile_hz=500.0)
        try:
            box = BBox(0.5, 0.5, 8.5, 8.5)
            # anchor at least one sample inside an execution
            for _ in range(3):
                framework.query(box, 0.0, HORIZON / 2)
                framework.profiler.sample_once()
            explain = framework.explain(box, 0.0, HORIZON / 2)
            assert explain.profile_self_s  # sampled evidence present
            assert all(
                seconds > 0 for seconds in explain.profile_self_s.values()
            )
            assert "profile self-time" in explain.format()
            assert "profile_self_s" in explain.as_dict()
        finally:
            framework.close()

    def test_slow_flight_record_carries_memory_and_profile(self, road):
        framework = self._deploy(road, profile_hz=200.0, slow_query_s=1e-9)
        try:
            box = BBox(0.5, 0.5, 8.5, 8.5)
            framework.query(box, 0.0, HORIZON / 2)
            flight = framework.flight_log()
            assert flight.slow_total >= 1
            (record,) = flight.slow_records[-1:]
            assert record.peak_rss_bytes is not None
            assert record.peak_rss_bytes > 0
            assert "profile_top" in record.detail
            as_dict = record.as_dict()
            assert as_dict["peak_rss_bytes"] == record.peak_rss_bytes
            assert any(
                "rss=" in line for line in flight.format_slow()
            )
        finally:
            framework.close()

    def test_sharded_workers_ship_profiles_under_worker_run(self, road):
        """The acceptance path: worker samples must land nested under
        the grafted ``worker.run`` span paths in the parent's table."""
        framework = self._deploy(road, profile_hz=200.0, shards=2)
        try:
            engine = framework.engine()
            box = BBox(0.5, 0.5, 8.5, 8.5)
            queries = [
                RangeQuery(box, 0.0, HORIZON * f) for f in (0.3, 0.5, 0.7)
            ]
            engine.execute_batch(queries)
            paths = {
                path for path, _ in framework.profiler.table.counts
            }
            worker_paths = [
                path
                for path in paths
                if path[:3] == ("query.execute_sharded",
                               "sharded.scatter", "worker.run")
            ]
            assert worker_paths  # anchor sample guarantees >= 1
        finally:
            framework.close()


# ----------------------------------------------------------------------
# Benchmark-trend tracker
# ----------------------------------------------------------------------
class TestBenchTrend:
    def test_classify_directions(self):
        assert classify("query:entries.x.queries_per_s") == "higher"
        assert classify("ingest:entries.x.speedup") == "higher"
        assert classify("storage:entries.x.ratio") == "higher"
        assert classify("storage:entries.x.containment") == "higher"
        assert classify("query:entries.x.batch_s") == "lower"
        assert classify("storage:entries.x.total_bytes") == "lower"
        assert classify("monitor:entry.overhead") == "lower"
        # the trap: latency_ratio must NOT hit the "ratio" rule
        assert classify("storage:entries.x.latency_ratio") == "lower"
        assert classify("ingest:schema") == "info"
        assert classify("stream:entries.x.n_events") == "info"
        assert classify("monitor:entry.profile_hz") == "info"

    def test_flatten_skips_booleans_and_strings(self):
        cells = flatten_bench(
            "BENCH_x.json",
            {"a": {"b": 1.5, "flag": True, "name": "s"}, "c": 2},
        )
        assert cells == {"x:a.b": 1.5, "x:c": 2.0}

    def test_compare_verdicts(self):
        previous = {
            "b:x.queries_per_s": 100.0,
            "b:x.batch_s": 1.0,
            "b:x.gone_s": 5.0,
        }
        current = {
            "b:x.queries_per_s": 60.0,   # -40% throughput: regressed
            "b:x.batch_s": 1.1,          # +10% wall: within tolerance
            "b:x.fresh_s": 2.0,          # new cell
            "b:x.n_events": 10.0,        # info
        }
        verdicts = compare(current, previous, tolerance=0.25)
        assert verdicts["b:x.queries_per_s"]["verdict"] == "regressed"
        assert verdicts["b:x.batch_s"]["verdict"] == "ok"
        assert verdicts["b:x.fresh_s"]["verdict"] == "new"
        assert verdicts["b:x.n_events"]["verdict"] == "info"
        assert verdicts["b:x.gone_s"]["verdict"] == "removed"
        assert verdicts["b:x.queries_per_s"]["change"] == pytest.approx(
            -0.4
        )

    def test_compare_better_direction_aware(self):
        previous = {"b:x.queries_per_s": 100.0, "b:x.batch_s": 1.0}
        current = {"b:x.queries_per_s": 150.0, "b:x.batch_s": 0.5}
        verdicts = compare(current, previous, tolerance=0.25)
        assert verdicts["b:x.queries_per_s"]["verdict"] == "better"
        assert verdicts["b:x.batch_s"]["verdict"] == "better"

    def test_lower_metric_regression(self):
        previous = {"b:x.batch_s": 1.0}
        current = {"b:x.batch_s": 1.5}
        verdicts = compare(current, previous, tolerance=0.25)
        assert verdicts["b:x.batch_s"]["verdict"] == "regressed"

    def _bench_dir(self, tmp_path, qps: float):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir(exist_ok=True)
        (bench_dir / "BENCH_query.json").write_text(
            json.dumps(
                {
                    "schema": 1,
                    "entries": {
                        "smoke": {"cells": {
                            "compiled/batch": {"queries_per_s": qps}
                        }}
                    },
                }
            )
        )
        return bench_dir

    def test_trend_write_then_check_round_trip(self, tmp_path):
        bench_dir = self._bench_dir(tmp_path, qps=30_000.0)
        trend_path = bench_dir / "BENCH_trend.json"

        # first run: every tracked cell is new, nothing regressed
        report = build_trend(bench_dir, trend_path, write=True)
        assert report["regressed"] == []
        assert report["snapshot_count"] == 1
        assert trend_path.exists()
        cell = "query:entries.smoke.cells.compiled/batch.queries_per_s"
        assert report["verdicts"][cell]["verdict"] == "new"

        # same numbers re-checked: ok, deterministic
        report = build_trend(bench_dir, trend_path, write=False)
        assert report["verdicts"][cell]["verdict"] == "ok"
        assert report["regressed"] == []

        # committed collapse: the gate fires
        self._bench_dir(tmp_path, qps=10_000.0)
        report = build_trend(bench_dir, trend_path, write=False)
        assert report["regressed"] == [cell]
        assert report["verdicts"][cell]["verdict"] == "regressed"

        # accepting it = --write: a matching snapshot clears the gate
        report = build_trend(bench_dir, trend_path, write=True)
        assert report["snapshot_count"] == 2
        report = build_trend(bench_dir, trend_path, write=False)
        assert report["regressed"] == []

    def test_reports_render(self, tmp_path):
        bench_dir = self._bench_dir(tmp_path, qps=30_000.0)
        trend_path = bench_dir / "BENCH_trend.json"
        build_trend(bench_dir, trend_path, write=True)
        self._bench_dir(tmp_path, qps=10_000.0)
        report = build_trend(bench_dir, trend_path, write=False)
        markdown = render_markdown(report)
        assert "## Regressions" in markdown
        assert "queries_per_s" in markdown
        html_page = render_html(report)
        assert "regressed" in html_page
        assert "<table>" in html_page

    def test_committed_trend_covers_all_bench_files(self):
        """The repo's own BENCH_trend.json must track every committed
        BENCH file, and the committed numbers must pass the gate."""
        bench_dir = (
            __import__("pathlib").Path(__file__).resolve().parents[1]
            / "benchmarks"
        )
        trend_path = bench_dir / "BENCH_trend.json"
        assert trend_path.exists(), "BENCH_trend.json not committed"
        cells = collect_cells(bench_dir)
        prefixes = {cell.split(":", 1)[0] for cell in cells}
        assert prefixes == {
            "ingest", "query", "stream", "storage", "monitor"
        }
        report = build_trend(bench_dir, trend_path, write=False)
        assert report["regressed"] == []


# ----------------------------------------------------------------------
# Tracer per-thread stacks (the attribution join's substrate)
# ----------------------------------------------------------------------
class TestTracerThreadStacks:
    def test_open_path_defaults_to_calling_thread(self):
        tracer = Tracer()
        assert tracer.open_path() == ()
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.open_path() == ("a", "b")
            assert tracer.open_path() == ("a",)
        assert tracer.open_path() == ()

    def test_spans_nest_per_thread(self):
        tracer = Tracer()
        seen = {}
        barrier = threading.Barrier(2, timeout=10.0)

        def work(name):
            with tracer.span(name):
                barrier.wait()  # both spans open concurrently
                seen[name] = tracer.open_path()
                barrier.wait()

        threads = [
            threading.Thread(target=work, args=(name,))
            for name in ("t1", "t2")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # each thread saw only its own stack, not the other's
        assert seen == {"t1": ("t1",), "t2": ("t2",)}
        assert len(tracer.roots) == 2

    def test_profiler_field_on_instrumentation(self):
        obs = Instrumentation(
            tracer=Tracer(), metrics=MetricsRegistry(), provenance=False
        )
        assert obs.profiler is None
        assert NULL_INSTRUMENTATION.profiler is None
