"""Shape-regression tests: miniature versions of the paper's figures.

Each test re-derives one qualitative claim of §5 on the small pipeline
so the reproduction's conclusions are guarded by CI, not only by the
full benchmarks.  Thresholds are deliberately loose — they encode
orderings and monotonicity, not absolute numbers.
"""

import numpy as np
import pytest

from repro.evaluation import SMALL_CONFIG, evaluate, get_pipeline
from repro.query import UPPER


@pytest.fixture(scope="module")
def p():
    return get_pipeline(SMALL_CONFIG)


@pytest.fixture(scope="module")
def queries(p):
    return p.standard_queries(0.1728, n=12)


def _median_error(p, network, queries):
    report = evaluate(p, p.engine(network).execute, queries)
    return report.error.median if report.error.count else float("nan")


class TestFig12aShape:
    def test_error_decreases_with_graph_size(self, p, queries):
        errors = []
        for fraction in (0.1, 0.3, 0.6):
            m = p.budget_for_fraction(fraction)
            errors.append(_median_error(p, p.network("quadtree", m, seed=2), queries))
        valid = [e for e in errors if e == e]
        assert len(valid) >= 2
        assert valid[-1] <= valid[0] + 0.05

    def test_submodular_beats_uniform_on_history(self, p, queries):
        m = p.budget_for_fraction(0.3)
        submodular = _median_error(p, p.network("submodular", m), queries)
        uniform = _median_error(p, p.network("uniform", m, seed=2), queries)
        if submodular == submodular and uniform == uniform:
            assert submodular <= uniform + 0.1


class TestFig13Shape:
    def test_miss_rate_decreases_with_size(self, p, queries):
        rates = []
        for fraction in (0.05, 0.5):
            m = p.budget_for_fraction(fraction)
            report = evaluate(
                p, p.engine(p.network("uniform", m, seed=3)).execute, queries
            )
            rates.append(report.miss_rate)
        assert rates[1] <= rates[0]

    def test_upper_bound_ratio_at_least_one(self, p, queries):
        m = p.budget_for_fraction(0.4)
        engine = p.engine(p.network("quadtree", m, seed=2))
        upper_queries = [q.with_bound(UPPER) for q in queries]
        report = evaluate(p, engine.execute, upper_queries)
        if report.ratio.count:
            assert report.ratio.median >= 1.0 - 1e-9


class TestFig14Shape:
    def test_knn_error_no_worse_with_larger_k(self, p, queries):
        m = p.budget_for_fraction(0.25)
        small_k = _median_error(
            p, p.network("quadtree", m, seed=2, connectivity="knn", k=2),
            queries,
        )
        large_k = _median_error(
            p, p.network("quadtree", m, seed=2, connectivity="knn", k=8),
            queries,
        )
        if small_k == small_k and large_k == large_k:
            assert large_k <= small_k + 0.15

    def test_model_overhead_bounded(self, p, queries):
        from repro.models import ModeledCountStore, PeriodicModel
        from repro.query import QueryEngine

        m = p.budget_for_fraction(0.3)
        network = p.network("quadtree", m, seed=2)
        form = p.form(network)
        store = ModeledCountStore.fit(form, PeriodicModel)
        exact_engine = QueryEngine(network, form)
        model_engine = QueryEngine(network, store)
        deltas = []
        for query in queries:
            exact = exact_engine.execute(query)
            approx = model_engine.execute(query)
            if exact.missed or not exact.value:
                continue
            deltas.append(abs(approx.value - exact.value) / abs(exact.value))
        if deltas:
            assert np.median(deltas) < 1.0


class TestFig11cdShape:
    def test_perimeter_access_below_flood(self, p, queries):
        m = p.budget_for_fraction(0.25)
        engine = p.engine(p.network("quadtree", m, seed=2))
        sampled = evaluate(p, engine.execute, queries)
        if sampled.nodes_accessed.count:
            assert (
                sampled.nodes_accessed.mean < sampled.exact_nodes.mean
            )

    def test_sampled_queries_faster(self, p, queries):
        m = p.budget_for_fraction(0.25)
        engine = p.engine(p.network("quadtree", m, seed=2))
        report = evaluate(p, engine.execute, queries)
        if report.elapsed.count:
            assert report.speedup > 1.0


class TestStorageShape:
    def test_learned_store_smaller_than_exact(self, p):
        from repro.models import LinearModel, ModeledCountStore

        m = p.budget_for_fraction(0.3)
        network = p.network("quadtree", m, seed=2)
        form = p.form(network)
        store = ModeledCountStore.fit(form, LinearModel)
        assert store.storage_bytes < form.total_events * 8

    def test_baseline_plateaus_above_framework(self, p, queries):
        """§5.2's closing claim at the largest size we test."""
        fraction = 0.6
        m = p.budget_for_fraction(fraction)
        framework = _median_error(p, p.network("kdtree", m, seed=2), queries)
        report = evaluate(
            p, p.baseline_for_fraction(fraction, seed=2).execute, queries
        )
        baseline = report.error.median if report.error.count else float("nan")
        if framework == framework and baseline == baseline:
            assert framework <= baseline + 0.15
