"""Unit tests for connectivity generation and SensorNetwork."""

import numpy as np
import pytest

from repro.errors import QueryError, SelectionError
from repro.geometry import BBox
from repro.mobility import EXT
from repro.planar import canonical_edge
from repro.sampling import (
    full_network,
    knn_edges,
    sampled_network,
    triangulation_edges,
    wall_network,
)
from repro.trajectories import occupancy_count


class TestConnectivity:
    def test_triangulation_two_points(self):
        assert triangulation_edges(np.array([[0, 0], [1, 1]])) == [(0, 1)]

    def test_triangulation_too_few(self):
        with pytest.raises(SelectionError):
            triangulation_edges(np.array([[0, 0]]))

    def test_knn_symmetric_dedup(self):
        positions = np.array([[0, 0], [1, 0], [2, 0], [10, 0]])
        edges = knn_edges(positions, k=1)
        # (0,1) chosen by both 0 and 1 -> appears once.
        assert (0, 1) in edges
        assert len(edges) == len(set(edges))

    def test_knn_k_larger_than_n(self):
        positions = np.array([[0, 0], [1, 0], [0, 1]])
        edges = knn_edges(positions, k=10)
        assert len(edges) == 3  # complete graph on 3 nodes

    def test_knn_more_edges_with_larger_k(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 10, size=(30, 2))
        assert len(knn_edges(positions, 2)) < len(knn_edges(positions, 6))

    def test_knn_invalid_k(self):
        with pytest.raises(SelectionError):
            knn_edges(np.array([[0, 0], [1, 1]]), 0)


class TestFullNetwork:
    def test_every_junction_its_own_region(self, organic_domain, full_net):
        assert full_net.region_count == organic_domain.junction_count
        for junction in organic_domain.junctions:
            region = full_net.region_of(junction)
            assert full_net.region_junctions(region) == {junction}

    def test_every_sensing_edge_is_wall(self, organic_domain, full_net):
        assert len(full_net.walls) == organic_domain.sensing_edge_count

    def test_size_fraction_is_one(self, full_net):
        assert full_net.size_fraction == pytest.approx(1.0)

    def test_ext_region_isolated(self, full_net):
        assert full_net.region_junctions(full_net.ext_region) == set()


class TestSampledNetwork:
    def test_needs_two_sensors(self, organic_domain):
        with pytest.raises(SelectionError):
            sampled_network(organic_domain, [0])

    def test_infinity_node_rejected(self, organic_domain):
        outer = organic_domain.dual.outer_node
        interior = organic_domain.dual.interior_nodes[:2]
        with pytest.raises(SelectionError):
            sampled_network(organic_domain, [outer, *interior])

    def test_unknown_connectivity(self, organic_domain):
        blocks = organic_domain.dual.interior_nodes[:5]
        with pytest.raises(SelectionError):
            sampled_network(organic_domain, blocks, connectivity="magic")

    def test_regions_partition_junctions(self, organic_domain, sampled_net):
        seen = set()
        for region in sampled_net.region_ids:
            junctions = sampled_net.region_junctions(region)
            assert not (seen & junctions)
            seen |= junctions
        seen |= sampled_net.region_junctions(sampled_net.ext_region)
        assert seen == set(organic_domain.junctions)

    def test_walls_are_road_edges(self, organic_domain, sampled_net):
        road_edges = {
            canonical_edge(u, v) for u, v in organic_domain.graph.edges()
        }
        assert set(sampled_net.walls) <= road_edges

    def test_wall_owners_are_sensors(self, sampled_net):
        for owners in sampled_net.wall_owners.values():
            assert owners <= set(sampled_net.sensors)

    def test_knn_has_more_regions_than_triangulation(self, organic_domain):
        from repro.selection import SensorCandidates, QuadTreeSelector

        candidates = SensorCandidates.from_domain(organic_domain)
        chosen = QuadTreeSelector().select(
            candidates, 16, np.random.default_rng(3)
        )
        tri = sampled_network(organic_domain, chosen,
                              connectivity="triangulation")
        knn = sampled_network(organic_domain, chosen, connectivity="knn", k=6)
        assert knn.region_count >= tri.region_count

    def test_fewer_sensors_fewer_regions(self, organic_domain):
        from repro.selection import SensorCandidates, UniformSelector

        candidates = SensorCandidates.from_domain(organic_domain)
        rng = np.random.default_rng(5)
        small = sampled_network(
            organic_domain, UniformSelector().select(candidates, 6, rng)
        )
        rng = np.random.default_rng(5)
        large = sampled_network(
            organic_domain, UniformSelector().select(candidates, 40, rng)
        )
        assert small.region_count <= large.region_count


class TestRegionApproximation:
    def test_lower_regions_subset_of_query(self, organic_domain, sampled_net):
        box = BBox(2, 2, 8, 8)
        junctions = organic_domain.junctions_in_bbox(box)
        for region in sampled_net.lower_regions(junctions):
            assert sampled_net.region_junctions(region) <= junctions

    def test_upper_regions_cover_query(self, organic_domain, sampled_net):
        box = BBox(3, 3, 7, 7)
        junctions = organic_domain.junctions_in_bbox(box)
        regions, covered = sampled_net.upper_regions(junctions)
        if covered:
            union = set()
            for region in regions:
                union |= sampled_net.region_junctions(region)
            assert junctions <= union

    def test_upper_not_covered_near_rim(self, organic_domain, sampled_net):
        # A region hugging the domain rim touches the EXT region.
        box = BBox(0, 0, 1.0, 1.0)
        junctions = organic_domain.junctions_in_bbox(box)
        if junctions:
            _, covered = sampled_net.upper_regions(junctions)
            assert not covered

    def test_boundary_rejects_ext_region(self, sampled_net):
        with pytest.raises(QueryError):
            sampled_net.region_boundary([sampled_net.ext_region])

    def test_boundary_interior_walls_cancel(self, sampled_net):
        regions = sampled_net.region_ids[:2]
        boundary = sampled_net.region_boundary(regions)
        for u, v in boundary:
            tail_region = sampled_net.region_of(u) if u != EXT else sampled_net.ext_region
            head_region = sampled_net.region_of(v)
            assert head_region in regions
            assert tail_region not in regions


class TestCountingExactness:
    """The sampled network's counts are exact on its own regions."""

    def test_static_counts_exact_on_regions(
        self, organic_domain, workload, sampled_net, sampled_form
    ):
        rng = np.random.default_rng(0)
        regions = list(sampled_net.region_ids)
        for _ in range(10):
            chosen = {regions[i] for i in
                      rng.integers(0, len(regions), size=3)}
            junctions = set()
            for region in chosen:
                junctions |= sampled_net.region_junctions(region)
            boundary = sampled_net.region_boundary(chosen)
            for t in rng.uniform(0, workload.horizon, 3):
                estimate = sampled_form.integrate_until(boundary, t)
                truth = occupancy_count(workload.trips, junctions, t)
                assert estimate == truth

    def test_observed_events_subset(self, sampled_net, events):
        observed = sampled_net.observed_events(events)
        assert len(observed) < len(events)
        walls = sampled_net.walls
        for event in observed:
            assert canonical_edge(event.tail, event.head) in walls

    def test_sensors_for_boundary_nonempty(self, sampled_net):
        region = sampled_net.region_ids[0]
        boundary = sampled_net.region_boundary([region])
        sensors = sampled_net.sensors_for_boundary(boundary)
        assert sensors
        assert sensors <= set(sampled_net.sensors)


class TestWallNetwork:
    def test_explicit_walls(self, grid_domain):
        region = grid_domain.junctions_in_bbox(BBox(3, 3, 7, 7))
        walls = [
            canonical_edge(u, v)
            for u, v in grid_domain.inward_boundary_edges(region)
        ]
        network = wall_network(grid_domain, walls, sensors=[0, 1])
        inner = [
            r
            for r in network.region_ids
            if network.region_junctions(r) == region
        ]
        assert len(inner) == 1
