"""Shared fixtures: one small domain + workload reused across tests.

Session-scoped so the expensive pieces (road generation, trip planning,
event extraction, full-network ingestion) are built once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forms import TrackingForm
from repro.mobility import MobilityDomain, grid_city, organic_city
from repro.sampling import full_network, sampled_network
from repro.selection import QuadTreeSelector, SensorCandidates
from repro.trajectories import WorkloadConfig, generate_workload, ingest


@pytest.fixture(scope="session")
def grid_domain() -> MobilityDomain:
    """A small, perfectly regular domain (easy to reason about)."""
    return MobilityDomain(
        grid_city(rows=7, cols=7, jitter=0.0, drop_fraction=0.0)
    )


@pytest.fixture(scope="session")
def organic_domain() -> MobilityDomain:
    """A small organic (Voronoi) domain — the realistic city shape."""
    return MobilityDomain(
        organic_city(blocks=80, rng=np.random.default_rng(42))
    )


@pytest.fixture(scope="session")
def workload(organic_domain):
    """A small but busy trip workload on the organic domain."""
    return generate_workload(
        organic_domain,
        WorkloadConfig(
            n_trips=400,
            horizon_days=1.0,
            mean_dwell=3600.0,
            seed=11,
        ),
    )


@pytest.fixture(scope="session")
def events(organic_domain, workload):
    return workload.events(organic_domain)


@pytest.fixture(scope="session")
def full_net(organic_domain):
    return full_network(organic_domain)


@pytest.fixture(scope="session")
def full_form(full_net, events) -> TrackingForm:
    return full_net.build_form(events)


@pytest.fixture(scope="session")
def sampled_net(organic_domain):
    candidates = SensorCandidates.from_domain(organic_domain)
    chosen = QuadTreeSelector().select(
        candidates, 16, np.random.default_rng(7)
    )
    return sampled_network(organic_domain, chosen)


@pytest.fixture(scope="session")
def sampled_form(sampled_net, events) -> TrackingForm:
    return sampled_net.build_form(events)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
