"""Unit tests for the Euler-histogram baseline and the network simulator."""

import numpy as np
import pytest

from repro.baseline import EulerHistogramBaseline
from repro.errors import QueryError, SelectionError
from repro.geometry import BBox
from repro.network import NetworkSimulator
from repro.query import RangeQuery, STATIC, TRANSIENT
from repro.trajectories import occupancy_count


@pytest.fixture(scope="module")
def baseline(request):
    organic_domain = request.getfixturevalue("organic_domain")
    events = request.getfixturevalue("events")
    instance = EulerHistogramBaseline(
        organic_domain,
        m=organic_domain.junction_count // 2,
        rng=np.random.default_rng(0),
        time_bins=None,  # exact mode for the accuracy tests
    )
    instance.ingest(events)
    return instance


class TestBaselineConstruction:
    def test_budget_validated(self, organic_domain):
        with pytest.raises(SelectionError):
            EulerHistogramBaseline(organic_domain, m=0)
        with pytest.raises(SelectionError):
            EulerHistogramBaseline(
                organic_domain, m=organic_domain.junction_count + 1
            )

    def test_query_before_ingest_rejected(self, organic_domain):
        fresh = EulerHistogramBaseline(organic_domain, m=10)
        with pytest.raises(QueryError):
            fresh.execute(RangeQuery(BBox(0, 0, 5, 5), 0, 1))

    def test_size_fraction(self, organic_domain):
        instance = EulerHistogramBaseline(organic_domain, m=10)
        assert instance.size_fraction == pytest.approx(
            10 / organic_domain.junction_count
        )


class TestBaselineQueries:
    def test_full_sampling_exact_in_unbinned_mode(
        self, organic_domain, events, workload
    ):
        everything = EulerHistogramBaseline(
            organic_domain,
            m=organic_domain.junction_count,
            time_bins=None,
        )
        everything.ingest(events)
        box = BBox(2, 2, 8, 8)
        t2 = 0.5 * workload.horizon
        result = everything.execute(RangeQuery(box, 0.0, t2, kind=STATIC))
        region = organic_domain.junctions_in_bbox(box)
        assert result.value == occupancy_count(workload.trips, region, t2)

    def test_estimates_close_at_half_sampling(
        self, baseline, organic_domain, workload
    ):
        box = BBox(1, 1, 9, 9)
        t2 = 0.6 * workload.horizon
        result = baseline.execute(RangeQuery(box, 0.0, t2))
        region = organic_domain.junctions_in_bbox(box)
        exact = occupancy_count(workload.trips, region, t2)
        if exact > 5:
            assert result.value == pytest.approx(exact, rel=0.8)

    def test_transient_query(self, baseline, organic_domain, workload):
        box = BBox(1, 1, 9, 9)
        result = baseline.execute(
            RangeQuery(box, 0.2 * workload.horizon,
                       0.7 * workload.horizon, kind=TRANSIENT)
        )
        assert not result.missed

    def test_miss_when_no_sampled_face(self, organic_domain, events):
        sparse = EulerHistogramBaseline(
            organic_domain, m=1, rng=np.random.default_rng(5)
        )
        sparse.ingest(events)
        # Tiny box that very likely excludes the single sampled face.
        result = sparse.execute(RangeQuery(BBox(0, 0, 0.5, 0.5), 0, 1))
        assert result.missed or result.nodes_accessed == 1

    def test_nodes_accessed_scales_with_area(self, baseline, workload):
        t2 = 0.5 * workload.horizon
        small = baseline.execute(RangeQuery(BBox(4, 4, 6, 6), 0, t2))
        large = baseline.execute(RangeQuery(BBox(1, 1, 9, 9), 0, t2))
        assert large.nodes_accessed > small.nodes_accessed

    def test_binning_reduces_storage(self, organic_domain, events):
        binned = EulerHistogramBaseline(
            organic_domain, m=50, time_bins=16, rng=np.random.default_rng(1)
        )
        binned.ingest(events)
        exact = EulerHistogramBaseline(
            organic_domain, m=50, time_bins=None, rng=np.random.default_rng(1)
        )
        exact.ingest(events)
        assert binned.storage_events <= exact.storage_events
        assert binned.storage_events == 50 * 17  # bins + 1 edges


class TestNetworkSimulator:
    def test_server_fanout_accounting(self, sampled_net):
        simulator = NetworkSimulator(sampled_net)
        report = simulator.dispatch(
            list(sampled_net.sensors[:5]), strategy="server_fanout"
        )
        assert report.sensors_contacted == 5
        assert report.messages == 10
        assert all(load == 2 for load in report.load.values())

    def test_perimeter_walk_hops_exceed_sensor_count(self, sampled_net):
        simulator = NetworkSimulator(sampled_net)
        sensors = list(sampled_net.sensors[:6])
        report = simulator.dispatch(sensors, strategy="perimeter_walk")
        assert report.sensors_contacted == 6
        assert report.hops >= len(sensors)

    def test_deduplicates_sensors(self, sampled_net):
        simulator = NetworkSimulator(sampled_net)
        sensor = sampled_net.sensors[0]
        report = simulator.dispatch([sensor, sensor])
        assert report.sensors_contacted == 1

    def test_empty_perimeter_rejected(self, sampled_net):
        with pytest.raises(QueryError):
            NetworkSimulator(sampled_net).dispatch([])

    def test_unknown_strategy_rejected(self, sampled_net):
        with pytest.raises(QueryError):
            NetworkSimulator(sampled_net).dispatch(
                [sampled_net.sensors[0]], strategy="pigeon"
            )

    def test_walk_cheaper_messages_than_fanout(self, sampled_net):
        simulator = NetworkSimulator(sampled_net)
        sensors = list(sampled_net.sensors[:8])
        fanout = simulator.dispatch(sensors, strategy="server_fanout")
        walk = simulator.dispatch(sensors, strategy="perimeter_walk")
        # The walk sends one message per sensor plus 2 server legs,
        # always fewer than 2 per sensor.
        assert walk.messages < fanout.messages

    @pytest.mark.parametrize("strategy", ["server_fanout", "perimeter_walk"])
    def test_load_sums_to_messages(self, sampled_net, strategy):
        simulator = NetworkSimulator(sampled_net)
        sensors = list(sampled_net.sensors[:7])
        report = simulator.dispatch(sensors, strategy=strategy)
        assert sum(report.load.values()) == report.messages

    def test_dispatch_metrics_match_report(self, sampled_net):
        from repro.obs import use_registry

        with use_registry() as registry:
            simulator = NetworkSimulator(sampled_net)
            sensors = list(sampled_net.sensors[:6])
            fanout = simulator.dispatch(sensors, strategy="server_fanout")
            walks = [
                simulator.dispatch(sensors, strategy="perimeter_walk")
                for _ in range(3)
            ]
        for strategy, reports in (
            ("server_fanout", [fanout]),
            ("perimeter_walk", walks),
        ):
            assert registry.value(
                "repro_sim_dispatches_total", strategy=strategy
            ) == len(reports)
            assert registry.value(
                "repro_sim_messages_total", strategy=strategy
            ) == sum(r.messages for r in reports)
            assert registry.value(
                "repro_sim_hops_total", strategy=strategy
            ) == sum(r.hops for r in reports)
            hist = registry.histogram(
                "repro_sim_messages", strategy=strategy
            )
            assert hist.count == len(reports)
            assert hist.sum == sum(r.messages for r in reports)
