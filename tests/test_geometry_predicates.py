"""Unit tests for repro.geometry.predicates."""

import pytest

from repro.geometry import (
    Segment,
    collinear,
    cross,
    crossing_parameter,
    on_segment,
    orientation,
    proper_intersection,
    segment_intersection,
    segments_intersect,
)


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation((0, 0), (1, 0), (1, 1)) == 1

    def test_clockwise(self):
        assert orientation((0, 0), (1, 1), (1, 0)) == -1

    def test_collinear(self):
        assert orientation((0, 0), (1, 1), (2, 2)) == 0

    def test_collinear_helper(self):
        assert collinear((0, 0), (2, 2), (5, 5))
        assert not collinear((0, 0), (2, 2), (5, 6))

    def test_cross_sign(self):
        assert cross((0, 0), (1, 0), (0, 1)) > 0
        assert cross((0, 0), (0, 1), (1, 0)) < 0

    def test_orientation_scale_invariance(self):
        # The tolerance scales with magnitude; large coordinates with a
        # genuine turn must not be classified collinear.
        assert orientation((1000, 1000), (2000, 1000), (2000, 1001)) == 1


class TestOnSegment:
    def test_midpoint_on_segment(self):
        assert on_segment((1, 1), Segment((0, 0), (2, 2)))

    def test_endpoint_on_segment(self):
        assert on_segment((0, 0), Segment((0, 0), (2, 2)))

    def test_collinear_but_outside(self):
        assert not on_segment((3, 3), Segment((0, 0), (2, 2)))

    def test_off_line(self):
        assert not on_segment((1, 0), Segment((0, 0), (2, 2)))


class TestSegmentsIntersect:
    def test_proper_crossing(self):
        assert segments_intersect(
            Segment((0, 0), (2, 2)), Segment((0, 2), (2, 0))
        )

    def test_disjoint(self):
        assert not segments_intersect(
            Segment((0, 0), (1, 0)), Segment((0, 1), (1, 1))
        )

    def test_shared_endpoint(self):
        assert segments_intersect(
            Segment((0, 0), (1, 1)), Segment((1, 1), (2, 0))
        )

    def test_collinear_overlap(self):
        assert segments_intersect(
            Segment((0, 0), (2, 0)), Segment((1, 0), (3, 0))
        )

    def test_collinear_disjoint(self):
        assert not segments_intersect(
            Segment((0, 0), (1, 0)), Segment((2, 0), (3, 0))
        )

    def test_t_touch(self):
        assert segments_intersect(
            Segment((0, 0), (2, 0)), Segment((1, 0), (1, 1))
        )


class TestSegmentIntersection:
    def test_crossing_point(self):
        point = segment_intersection(
            Segment((0, 0), (2, 2)), Segment((0, 2), (2, 0))
        )
        assert point == pytest.approx((1.0, 1.0))

    def test_none_for_disjoint(self):
        assert (
            segment_intersection(
                Segment((0, 0), (1, 0)), Segment((0, 1), (1, 1))
            )
            is None
        )

    def test_parallel_non_collinear(self):
        assert (
            segment_intersection(
                Segment((0, 0), (2, 0)), Segment((0, 1), (2, 1))
            )
            is None
        )

    def test_collinear_overlap_returns_shared_point(self):
        point = segment_intersection(
            Segment((0, 0), (2, 0)), Segment((1, 0), (3, 0))
        )
        assert point is not None
        assert on_segment(point, Segment((1, 0), (2, 0)))


class TestProperIntersection:
    def test_interior_crossing_found(self):
        point = proper_intersection(
            Segment((0, 0), (2, 2)), Segment((0, 2), (2, 0))
        )
        assert point == pytest.approx((1.0, 1.0))

    def test_shared_endpoint_excluded(self):
        assert (
            proper_intersection(
                Segment((0, 0), (1, 1)), Segment((1, 1), (2, 0))
            )
            is None
        )

    def test_endpoint_touch_excluded(self):
        assert (
            proper_intersection(
                Segment((0, 0), (2, 0)), Segment((1, 0), (1, 1))
            )
            is None
        )


class TestCrossingParameter:
    def test_left_to_right_positive_sign(self):
        # Barrier points north; path moves west->east crosses from the
        # barrier's left half-plane to its right.
        barrier = Segment((0, -1), (0, 1))
        path = Segment((-1, 0), (1, 0))
        result = crossing_parameter(path, barrier)
        assert result is not None
        t, sign = result
        assert t == pytest.approx(0.5)
        assert sign == 1

    def test_right_to_left_negative_sign(self):
        barrier = Segment((0, -1), (0, 1))
        path = Segment((1, 0), (-1, 0))
        result = crossing_parameter(path, barrier)
        assert result is not None
        _, sign = result
        assert sign == -1

    def test_no_crossing(self):
        barrier = Segment((0, -1), (0, 1))
        path = Segment((1, 0), (2, 0))
        assert crossing_parameter(path, barrier) is None

    def test_parallel_returns_none(self):
        barrier = Segment((0, 0), (0, 1))
        path = Segment((1, 0), (1, 1))
        assert crossing_parameter(path, barrier) is None
