"""Unit tests for the Laplace-noise privacy wrapper."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.forms import LaplaceNoisyStore, TrackingForm


@pytest.fixture()
def exact_form() -> TrackingForm:
    form = TrackingForm()
    for t in range(100):
        form.record("a", "b", float(t))
    return form


class TestLaplaceNoisyStore:
    def test_invalid_epsilon(self, exact_form):
        with pytest.raises(ConfigurationError):
            LaplaceNoisyStore(exact_form, epsilon=0.0)

    def test_deterministic_release(self, exact_form):
        store = LaplaceNoisyStore(exact_form, epsilon=1.0, seed=3)
        first = store.count_entering(("a", "b"), 50.0)
        second = store.count_entering(("a", "b"), 50.0)
        assert first == second

    def test_noise_scale_tracks_epsilon(self, exact_form):
        tight = LaplaceNoisyStore(exact_form, epsilon=100.0)
        loose = LaplaceNoisyStore(exact_form, epsilon=0.1)
        exact = exact_form.count_entering(("a", "b"), 50.0)
        tight_errors = [
            abs(tight.count_entering(("a", "b"), t) -
                exact_form.count_entering(("a", "b"), t))
            for t in np.linspace(0, 99, 25)
        ]
        loose_errors = [
            abs(loose.count_entering(("a", "b"), t) -
                exact_form.count_entering(("a", "b"), t))
            for t in np.linspace(0, 99, 25)
        ]
        assert np.mean(tight_errors) < np.mean(loose_errors)
        assert abs(tight.count_entering(("a", "b"), 50.0) - exact) < 1.0

    def test_net_between_consistency(self, exact_form):
        store = LaplaceNoisyStore(exact_form, epsilon=10.0, seed=1)
        net = store.net_between(("a", "b"), 10.0, 20.0)
        manual = store.net_until(("a", "b"), 20.0) - store.net_until(
            ("a", "b"), 10.0
        )
        assert net == pytest.approx(manual)
