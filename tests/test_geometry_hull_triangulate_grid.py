"""Unit tests for convex hull, Delaunay triangulation and SpatialGrid."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    BBox,
    SpatialGrid,
    convex_hull,
    delaunay_edges,
    delaunay_triangles,
    is_counter_clockwise,
    point_in_polygon,
)


class TestConvexHull:
    def test_square_with_interior_point(self):
        pts = [(0, 0), (2, 0), (2, 2), (0, 2), (1, 1)]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert (1, 1) not in hull

    def test_hull_is_ccw(self):
        rng = np.random.default_rng(0)
        pts = [tuple(p) for p in rng.uniform(0, 10, size=(40, 2))]
        hull = convex_hull(pts)
        assert is_counter_clockwise(hull)

    def test_all_points_inside_hull(self):
        rng = np.random.default_rng(1)
        pts = [tuple(p) for p in rng.uniform(0, 10, size=(60, 2))]
        hull = convex_hull(pts)
        assert all(point_in_polygon(p, hull) for p in pts)

    def test_collinear_points(self):
        hull = convex_hull([(0, 0), (1, 1), (2, 2)])
        assert len(hull) == 2

    def test_single_point(self):
        assert convex_hull([(3, 3)]) == [(3.0, 3.0)]

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            convex_hull([])

    def test_duplicates_collapsed(self):
        hull = convex_hull([(0, 0), (0, 0), (1, 0), (0, 1)])
        assert len(hull) == 3


class TestDelaunay:
    def test_two_points_single_edge(self):
        assert delaunay_edges([(0, 0), (1, 1)]) == [(0, 1)]

    def test_triangle(self):
        edges = delaunay_edges([(0, 0), (1, 0), (0.5, 1)])
        assert sorted(edges) == [(0, 1), (0, 2), (1, 2)]

    def test_square_has_five_edges(self):
        # 4 sides + 1 diagonal.
        edges = delaunay_edges([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert len(edges) == 5

    def test_collinear_fallback_path(self):
        edges = delaunay_edges([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert edges == [(0, 1), (1, 2), (2, 3)]

    def test_single_point_raises(self):
        with pytest.raises(GeometryError):
            delaunay_edges([(0, 0)])

    def test_edge_count_bound(self):
        # Planar graph: at most 3n - 6 edges.
        rng = np.random.default_rng(2)
        pts = [tuple(p) for p in rng.uniform(0, 10, size=(50, 2))]
        edges = delaunay_edges(pts)
        assert len(edges) <= 3 * 50 - 6

    def test_triangles(self):
        tris = delaunay_triangles([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert len(tris) == 2

    def test_triangles_too_few_points(self):
        with pytest.raises(GeometryError):
            delaunay_triangles([(0, 0), (1, 1)])


class TestSpatialGrid:
    def test_insert_and_query_point(self):
        grid: SpatialGrid = SpatialGrid(BBox(0, 0, 10, 10), 1.0)
        grid.insert("a", BBox(1, 1, 2, 2))
        assert "a" in grid.query_point((1.5, 1.5))
        assert grid.query_point((8, 8)) == set()

    def test_query_bbox_no_false_negatives(self):
        grid: SpatialGrid = SpatialGrid(BBox(0, 0, 10, 10), 0.7)
        rng = np.random.default_rng(3)
        boxes = []
        for index in range(100):
            x, y = rng.uniform(0, 9, 2)
            box = BBox(x, y, x + rng.uniform(0.1, 1), y + rng.uniform(0.1, 1))
            boxes.append(box)
            grid.insert(index, box)
        probe = BBox(2, 2, 5, 5)
        found = grid.query_bbox(probe)
        expected = {i for i, b in enumerate(boxes) if b.intersects(probe)}
        assert expected <= found

    def test_len_counts_items_not_cells(self):
        grid: SpatialGrid = SpatialGrid(BBox(0, 0, 10, 10), 1.0)
        grid.insert("wide", BBox(0, 0, 9, 9))
        assert len(grid) == 1

    def test_invalid_cell_size(self):
        with pytest.raises(GeometryError):
            SpatialGrid(BBox(0, 0, 1, 1), 0.0)

    def test_for_items_sizing(self):
        grid: SpatialGrid = SpatialGrid.for_items(BBox(0, 0, 10, 10), 100)
        assert grid.cell_size > 0
