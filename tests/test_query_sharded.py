"""Sharded scatter-gather engine: merge equivalence, ordering, shm.

Covers the randomized shard-merge equivalence grid (shards x
deployments x query kinds x static_eval x faults) against both
single-process planners, the input-order result contract under
interleaved shard completion, shared-memory pack/attach round trips,
leak-proof segment cleanup (close, GC and worker-crash paths), worker
metric merging and the FrameworkConfig/framework threading.
"""

from __future__ import annotations

import gc
import glob
import os
import signal
import time

import numpy as np
import pytest

from test_query_planner import _battery, _deployment, _key

from repro.core import FrameworkConfig, InNetworkFramework
from repro.errors import ConfigurationError, QueryError
from repro.forms import CompiledTrackingForm
from repro.mobility import grid_city, grid_strata
from repro.network import FaultConfig, FaultInjector
from repro.obs import MetricsRegistry, use_registry
from repro.obs.metrics import diff_dumps
from repro.query import (
    QueryEngine,
    RangeQuery,
    ShardedQueryEngine,
    shard_of_edges,
)
from repro.shm import attach_arrays, destroy_segment, pack_arrays
from repro.trajectories import EventColumns, WorkloadConfig, generate_workload

HORIZON = 86400.0


@pytest.fixture(scope="module", params=[("grid", 6), ("organic", 8),
                                        ("organic", 16)],
                ids=lambda p: f"{p[0]}-{p[1]}")
def deployment(request):
    """(network, form, columns, battery) for sharded cross-checks."""
    style, budget = request.param
    network, form, workload = _deployment(style, budget, seed=37)
    domain = network.domain
    columns = EventColumns.from_events(domain, workload.events(domain))
    battery = _battery(domain, HORIZON, seed=61)
    return network, form, columns, battery


def _segments():
    return set(glob.glob("/dev/shm/repro-shm-*"))


# ----------------------------------------------------------------------
# Randomized shard-merge equivalence grid
# ----------------------------------------------------------------------
class TestShardMergeEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_field_identical_to_both_planners(self, deployment, shards):
        network, form, columns, battery = deployment
        compiled = QueryEngine(
            network, form, planner="compiled"
        ).execute_batch(battery)
        python = QueryEngine(
            network, form, planner="python"
        ).execute_batch(battery)
        assert [_key(r) for r in compiled] == [_key(r) for r in python]
        with ShardedQueryEngine(network, columns, shards=shards) as engine:
            results = engine.execute_batch(battery)
        assert [_key(r) for r in results] == [_key(r) for r in compiled]

    @pytest.mark.parametrize("static_eval", ["start", "min"])
    def test_static_eval_modes(self, deployment, static_eval):
        network, form, columns, battery = deployment
        reference = QueryEngine(
            network, form, planner="compiled", static_eval=static_eval
        ).execute_batch(battery)
        with ShardedQueryEngine(
            network, columns, shards=3, static_eval=static_eval
        ) as engine:
            results = engine.execute_batch(battery)
        assert [_key(r) for r in results] == [_key(r) for r in reference]

    def test_caller_strata_partition(self, deployment):
        network, form, columns, battery = deployment
        strata = grid_strata(network.domain.bounds, rows=2, cols=3)
        reference = QueryEngine(
            network, form, planner="compiled"
        ).execute_batch(battery)
        with ShardedQueryEngine(
            network, columns, strata=strata
        ) as engine:
            assert engine.shards == strata.count == 6
            results = engine.execute_batch(battery)
        assert [_key(r) for r in results] == [_key(r) for r in reference]

    def test_faults_delegate_to_single_process(self, deployment):
        network, form, columns, battery = deployment
        config = FaultConfig(
            seed=5, sensor_failure_rate=0.2, drop_rate=0.05
        )
        reference = QueryEngine(
            network, form,
            faults=FaultInjector.for_network(network, config),
        ).execute_many(battery[:40])
        with ShardedQueryEngine(
            network, columns, shards=4,
            faults=FaultInjector.for_network(network, config),
        ) as engine:
            assert engine.planner_in_use != "sharded"
            results = engine.execute_batch(battery[:40])
        assert [_key(r) for r in results] == [_key(r) for r in reference]
        assert [r.approximate for r in results] == [
            r.approximate for r in reference
        ]

    def test_single_shard_and_zero_workers_delegate(self, deployment):
        network, form, columns, battery = deployment
        for kwargs in ({"shards": 1}, {"shards": 4, "workers": 0}):
            with ShardedQueryEngine(network, columns, **kwargs) as engine:
                assert engine.planner_in_use == "compiled"
                results = engine.execute_batch(battery[:12])
            reference = QueryEngine(
                network, form, planner="compiled"
            ).execute_batch(battery[:12])
            assert [_key(r) for r in results] == [
                _key(r) for r in reference
            ]

    def test_empty_batch_and_single_query(self, deployment):
        network, form, columns, battery = deployment
        with ShardedQueryEngine(network, columns, shards=2) as engine:
            assert engine.execute_batch([]) == []
            single = engine.execute(battery[0])
            many = engine.execute_many(battery[:8])
        reference = QueryEngine(
            network, form, planner="compiled"
        ).execute_batch(battery[:8])
        assert _key(single) == _key(reference[0])
        assert [_key(r) for r in many] == [_key(r) for r in reference]


# ----------------------------------------------------------------------
# Input-order result contract
# ----------------------------------------------------------------------
class TestOrderingContract:
    def test_sharded_results_slot_by_input_index(self, deployment):
        """Interleaved shard completion must not reorder results.

        Two workers drain unevenly sized sub-batches concurrently, so
        gather order differs from scatter order; every result must
        still answer its own input slot.
        """
        network, form, columns, battery = deployment
        rng = np.random.default_rng(7)
        shuffled = [battery[i] for i in rng.permutation(len(battery))]
        with ShardedQueryEngine(
            network, columns, shards=4, workers=2
        ) as engine:
            results = engine.execute_batch(shuffled)
        assert len(results) == len(shuffled)
        for result, query in zip(results, shuffled):
            assert result.query is query

    def test_single_process_batch_preserves_input_order(self, deployment):
        network, form, columns, battery = deployment
        rng = np.random.default_rng(11)
        shuffled = [battery[i] for i in rng.permutation(len(battery))]
        results = QueryEngine(
            network, form, planner="compiled"
        ).execute_batch(shuffled)
        for result, query in zip(results, shuffled):
            assert result.query is query


# ----------------------------------------------------------------------
# Shared-memory round trips
# ----------------------------------------------------------------------
class TestShmRoundTrip:
    def test_pack_attach_arrays(self):
        arrays = {
            "a": np.arange(17, dtype=np.int32),
            "b": np.linspace(0, 1, 9),
            "c": np.zeros(0, dtype=np.int8),
        }
        handle, descriptor = pack_arrays(arrays, hint="t")
        try:
            attached_handle, views = attach_arrays(descriptor)
            for key, array in arrays.items():
                assert views[key].dtype == array.dtype
                np.testing.assert_array_equal(views[key], array)
            attached_handle.close()
        finally:
            destroy_segment(handle)
        assert descriptor["segment"] not in {
            os.path.basename(p) for p in _segments()
        }

    def test_event_columns_round_trip(self, deployment):
        network, _, columns, _ = deployment
        handle, descriptor = columns.shm_pack()
        try:
            attached = EventColumns.shm_attach(
                descriptor, columns.interner
            )
            np.testing.assert_array_equal(attached.edge_id, columns.edge_id)
            np.testing.assert_array_equal(
                attached.direction, columns.direction
            )
            np.testing.assert_array_equal(attached.t, columns.t)
            # Zero-copy: the views live on the shared buffer.
            assert attached.t.base is not None
        finally:
            destroy_segment(handle)

    def test_compiled_form_round_trip(self, deployment):
        network, form, columns, battery = deployment
        handle, descriptor = form.shm_pack()
        try:
            attached = CompiledTrackingForm.shm_attach(
                descriptor, columns.interner
            )
            assert attached.total_events == form.total_events
            assert attached.edge_count == form.edge_count
            for edge in list(form.edges())[:10]:
                assert attached.timestamps(edge) == form.timestamps(edge)
            engine_a = QueryEngine(network, form, planner="compiled")
            engine_b = QueryEngine(network, attached, planner="compiled")
            keys_a = [_key(r) for r in engine_a.execute_batch(battery[:20])]
            keys_b = [_key(r) for r in engine_b.execute_batch(battery[:20])]
            assert keys_a == keys_b
        finally:
            destroy_segment(handle)

    def test_attach_freezes_packing_time_id_universe(self):
        # Own deployment: interning a synthetic edge below mutates the
        # interner, which must not leak into the shared fixture.
        network, form, workload = _deployment("grid", 5, seed=99)
        columns = EventColumns.from_events(
            network.domain, workload.events(network.domain)
        )
        handle, descriptor = form.shm_pack()
        try:
            columns.interner.intern("__shmtest_u__", "__shmtest_v__")
            attached = CompiledTrackingForm.shm_attach(
                descriptor, columns.interner
            )
            assert attached._n_ids == form._n_ids
            assert attached._n_ids < len(columns.interner)
            assert attached.count_entering(
                ("__shmtest_u__", "__shmtest_v__"), HORIZON
            ) == 0
        finally:
            destroy_segment(handle)


# ----------------------------------------------------------------------
# Leak-proof lifecycle
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a POSIX /dev/shm"
)
class TestShmLifecycle:
    def test_close_unlinks_segments(self, deployment):
        network, _, columns, battery = deployment
        before = _segments()
        engine = ShardedQueryEngine(network, columns, shards=3)
        created = _segments() - before
        assert len(created) == 3
        engine.execute_batch(battery[:8])
        engine.close()
        assert engine.closed
        assert _segments() == before
        engine.close()  # idempotent
        with pytest.raises(QueryError):
            engine.execute_batch(battery[:4])

    def test_garbage_collection_unlinks_segments(self, deployment):
        network, _, columns, _ = deployment
        before = _segments()
        engine = ShardedQueryEngine(network, columns, shards=2)
        assert _segments() != before
        del engine
        gc.collect()
        assert _segments() == before

    def test_worker_crash_still_cleans_up(self, deployment, capsys):
        network, _, columns, battery = deployment
        before = _segments()
        registry = MetricsRegistry()
        with use_registry(registry):
            engine = ShardedQueryEngine(
                network, columns, shards=2, workers=1
            )
        engine.execute_batch(battery[:8])  # spawn the worker
        for pid in list(engine._executor._processes):
            os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not any(
                p.is_alive() for p in engine._executor._processes.values()
            ):
                break
            time.sleep(0.05)
        # A batch against the dead pool surfaces a structured error
        # (counter + log record), never a bare BrokenProcessPool.
        with pytest.raises(QueryError, match="worker pool died"):
            engine.execute_batch(battery[:8])
        snap = registry.snapshot()
        assert snap["counters"]["repro_shard_worker_crash_total"] >= 1
        captured = capsys.readouterr()
        out = captured.out + captured.err
        assert "shard worker pool died" in out
        assert "error=BrokenProcessPool" in out
        engine.close()
        assert _segments() == before

    def test_context_manager_unlinks(self, deployment):
        network, _, columns, battery = deployment
        before = _segments()
        with ShardedQueryEngine(network, columns, shards=2) as engine:
            engine.execute_batch(battery[:8])
            assert _segments() != before
        assert _segments() == before


# ----------------------------------------------------------------------
# Worker metric merging
# ----------------------------------------------------------------------
class TestMetricsMerge:
    def test_dump_absorb_round_trip(self):
        source = MetricsRegistry()
        source.counter("c_total", outcome="x").inc(3)
        source.counter("c_total", outcome="y").inc(2.5)
        source.gauge("g").set(7)
        hist = source.histogram("h", buckets=(1, 10))
        hist.observe(0.5)
        hist.observe(5)
        hist.observe(100)
        target = MetricsRegistry()
        target.counter("c_total", outcome="x").inc(1)
        target.absorb(source.dump())
        assert target.value("c_total", outcome="x") == 4
        assert target.value("c_total", outcome="y") == 2.5
        assert target.value("g") == 7
        merged = target.histogram("h", buckets=(1, 10))
        assert merged.count == 3
        assert merged.sum == pytest.approx(105.5)
        assert merged.counts == [1, 1, 1]

    def test_absorb_skips_names(self):
        source = MetricsRegistry()
        source.counter("keep_total").inc(2)
        source.counter("skip_total").inc(9)
        target = MetricsRegistry()
        target.absorb(source.dump(), skip=("skip_total",))
        assert target.value("keep_total") == 2
        assert target.value("skip_total") == 0

    def test_diff_dumps_yields_pure_delta(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(5)
        registry.histogram("h", buckets=(1,)).observe(0.5)
        first = registry.dump()
        registry.counter("c_total").inc(2)
        registry.counter("new_total").inc(1)
        registry.histogram("h", buckets=(1,)).observe(3.0)
        delta = diff_dumps(registry.dump(), first)
        target = MetricsRegistry()
        target.absorb(delta)
        assert target.value("c_total") == 2
        assert target.value("new_total") == 1
        hist = target.histogram("h", buckets=(1,))
        assert hist.count == 1
        assert hist.sum == pytest.approx(3.0)
        assert diff_dumps(registry.dump(), registry.dump())["counters"] == []

    def test_sharded_traffic_lands_in_parent_registry(self, deployment):
        network, form, columns, battery = deployment
        with use_registry() as single_registry:
            QueryEngine(
                network, form, planner="compiled"
            ).execute_batch(battery)
        with use_registry() as sharded_registry:
            with ShardedQueryEngine(
                network, columns, shards=3
            ) as engine:
                engine.execute_batch(battery)
        # Canonical per-query series: counted once per query, exactly
        # as the single-process engine counts them.
        for name in (
            "repro_queries_total",
            "repro_query_misses_total",
            "repro_query_edges_accessed_total",
            "repro_query_sensors_accessed_total",
        ):
            assert sharded_registry.sum_values(name) == pytest.approx(
                single_registry.sum_values(name)
            ), name
        # Worker-internal activity is merged in rather than lost.
        assert sharded_registry.sum_values("repro_csr_searchsorted_total") > 0
        assert sharded_registry.sum_values("repro_sharded_batches_total") == 1
        assert (
            sharded_registry.sum_values("repro_sharded_subqueries_total") > 0
        )


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestPartition:
    def test_every_edge_gets_one_district(self, deployment):
        network, _, columns, _ = deployment
        strata = grid_strata(network.domain.bounds, rows=2, cols=2)
        labels = shard_of_edges(network.domain, strata)
        assert len(labels) == len(network.domain.edge_interner)
        assert labels.min() >= 0 and labels.max() < strata.count

    def test_shard_slices_partition_observed_events(self, deployment):
        network, _, columns, _ = deployment
        with ShardedQueryEngine(network, columns, shards=5) as engine:
            observed = network.observed_columns(columns)
            assert sum(engine.shard_events) == len(observed)
            layout = engine.describe()
            assert layout["mode"] == "sharded"
            assert layout["shards"] == 5


# ----------------------------------------------------------------------
# Config / framework threading
# ----------------------------------------------------------------------
class TestFrameworkThreading:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(shards=0)
        with pytest.raises(ConfigurationError):
            FrameworkConfig(shards=3, store="linear")
        assert FrameworkConfig(planner="sharded").effective_shards == 4
        assert FrameworkConfig(shards=3).sharded
        assert not FrameworkConfig().sharded
        assert FrameworkConfig().effective_shards == 1

    def test_framework_caches_and_closes_sharded_engine(self):
        road = grid_city(rows=5, cols=5, jitter=0.0, drop_fraction=0.0)
        framework = InNetworkFramework.from_road_graph(road)
        framework.deploy(FrameworkConfig(budget=8, shards=2, seed=3))
        workload = generate_workload(
            framework.domain,
            WorkloadConfig(n_trips=120, horizon_days=1.0, seed=4),
        )
        framework.ingest_trips(workload.trips)
        engine = framework.engine()
        assert isinstance(engine, ShardedQueryEngine)
        assert framework.engine() is engine  # cached
        assert isinstance(
            framework.engine(sharded=False), QueryEngine
        )
        box = framework.domain.bounds
        sharded_result = framework.query(box, 0.0, HORIZON)
        single = framework.engine(sharded=False).execute(
            RangeQuery(box, 0.0, HORIZON)
        )
        assert _key(sharded_result) == _key(single)
        framework.close()
        assert engine.closed
        assert framework.closed
        # close() is terminal: the framework raises a structured
        # QueryError instead of failing deep inside released pools.
        with pytest.raises(QueryError, match="closed"):
            framework.engine()
        with pytest.raises(QueryError, match="closed"):
            framework.query(box, 0.0, HORIZON)
        with pytest.raises(QueryError, match="closed"):
            framework.ingest_trips(workload.trips[:1])
        framework.close()  # idempotent

    def test_reingest_invalidates_sharded_engine(self):
        road = grid_city(rows=4, cols=4, jitter=0.0, drop_fraction=0.0)
        framework = InNetworkFramework.from_road_graph(road)
        framework.deploy(FrameworkConfig(budget=6, shards=2, seed=3))
        workload = generate_workload(
            framework.domain,
            WorkloadConfig(n_trips=60, horizon_days=1.0, seed=4),
        )
        framework.ingest_trips(workload.trips)
        first = framework.engine()
        framework.ingest_trips(workload.trips[:10])
        second = framework.engine()
        assert first.closed
        assert second is not first
        framework.close()
