"""Flight recorder and cross-process trace lanes.

Covers the always-on query flight recorder (bounded ring, oldest-first
eviction, strict slow-query promotion, slow-ring survival, engine and
framework threading) and the distributed-tracing acceptance path: a
multi-shard batch whose worker spans are grafted into the parent trace
and exported as Chrome trace-viewer lanes keyed by worker pid.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from test_query_planner import _battery, _deployment

from repro.core import FrameworkConfig, InNetworkFramework
from repro.geometry import BBox
from repro.obs import (
    FlightRecorder,
    Instrumentation,
    MetricsRegistry,
    Tracer,
    query_digest,
)
from repro.query import (
    QueryEngine,
    RangeQuery,
    SHARDED_STAGES,
    ShardedQueryEngine,
)
from repro.trajectories import EventColumns

HORIZON = 86400.0


@pytest.fixture(scope="module")
def deployment():
    """(network, form, columns, battery) shared by the sharded tests."""
    network, form, workload = _deployment("organic", 8, seed=37)
    domain = network.domain
    columns = EventColumns.from_events(domain, workload.events(domain))
    battery = _battery(domain, HORIZON, seed=61)
    return network, form, columns, battery


def _query(i: int = 0) -> RangeQuery:
    return RangeQuery(BBox(0, 0, 5 + i, 5), 0.0, 3600.0)


# ----------------------------------------------------------------------
# Ring-buffer bounds
# ----------------------------------------------------------------------
class TestRing:
    def test_capacity_never_exceeded(self):
        flight = FlightRecorder(capacity=8)
        for i in range(100):
            flight.record(_query(i), planner="compiled", elapsed_s=1e-4)
            assert len(flight) <= 8
        assert len(flight) == 8
        assert flight.total == 100

    def test_oldest_first_eviction(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight.record(_query(i), planner="compiled", elapsed_s=1e-4)
        seqs = [entry.seq for entry in flight.records]
        assert seqs == [7, 8, 9, 10]  # newest 4 survive, oldest first

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_round_trip(self, tmp_path):
        flight = FlightRecorder(capacity=4, slow_threshold_s=1e-6)
        flight.record(_query(), planner="python", elapsed_s=0.5,
                      value=3.0, fanout=2, stage_s={"route": 0.1})
        path = tmp_path / "flight.json"
        flight.dump(path)
        doc = json.loads(path.read_text())
        assert doc["capacity"] == 4
        assert doc["total"] == 1
        assert doc["slow_total"] == 1
        (entry,) = doc["records"]
        assert entry["digest"] == query_digest(_query())
        assert entry["planner"] == "python"
        assert entry["slow"] is True
        assert entry["stage_s"] == {"route": 0.1}


# ----------------------------------------------------------------------
# Slow-query promotion
# ----------------------------------------------------------------------
class TestPromotion:
    def test_promotion_strictly_above_threshold(self):
        flight = FlightRecorder(slow_threshold_s=0.01)
        at = flight.record(_query(), planner="compiled", elapsed_s=0.01)
        below = flight.record(_query(), planner="compiled", elapsed_s=0.0099)
        above = flight.record(_query(), planner="compiled", elapsed_s=0.0101)
        assert not at.slow and not below.slow
        assert above.slow
        assert flight.slow_total == 1
        assert flight.slow_records == (above,)

    def test_slow_records_survive_fast_traffic(self):
        flight = FlightRecorder(capacity=8, slow_threshold_s=0.01)
        slow = flight.record(_query(), planner="compiled", elapsed_s=0.5)
        for i in range(50):  # cycle the main ring many times over
            flight.record(_query(i), planner="compiled", elapsed_s=1e-4)
        assert slow not in flight.records
        assert slow in flight.slow_records

    def test_detail_attached_by_caller(self):
        flight = FlightRecorder(slow_threshold_s=1e-6)
        entry = flight.record(_query(), planner="sharded", elapsed_s=0.2)
        assert entry.slow
        entry.detail = {"shards": 4}
        assert flight.slow_records[0].as_dict()["detail"] == {"shards": 4}

    def test_format_slow_newest_first(self):
        flight = FlightRecorder(slow_threshold_s=1e-6)
        flight.record(_query(0), planner="compiled", elapsed_s=0.2)
        flight.record(_query(1), planner="compiled", elapsed_s=0.3)
        lines = flight.format_slow()
        assert lines[0].startswith("#2 ")
        assert lines[1].startswith("#1 ")

    def test_digest_stable_and_distinct(self):
        assert query_digest(_query(0)) == query_digest(_query(0))
        assert query_digest(_query(0)) != query_digest(_query(1))


# ----------------------------------------------------------------------
# Engine threading (single-process and sharded)
# ----------------------------------------------------------------------
class TestEngineRecording:
    def test_query_engine_records_each_query(self, deployment):
        network, form, _, battery = deployment
        flight = FlightRecorder(slow_threshold_s=1e9)
        engine = QueryEngine(network, form, flight=flight)
        for query in battery[:10]:
            engine.execute(query)
        assert flight.total == 10
        answered = [e for e in flight.records if not e.missed]
        missed = [e for e in flight.records if e.missed]
        assert answered
        for entry in answered:
            assert entry.planner == engine.planner_in_use
            assert entry.elapsed_s > 0
            assert set(entry.stage_s) >= {"resolve_junctions", "integrate"}
        for entry in missed:  # misses record the phases that did run
            assert "resolve_junctions" in entry.stage_s
            assert "integrate" not in entry.stage_s

    def test_promotion_captures_provenance(self, deployment):
        network, form, _, battery = deployment
        flight = FlightRecorder(slow_threshold_s=1e-9)
        engine = QueryEngine(
            network, form, flight=flight,
            instrumentation=Instrumentation.on(provenance=True),
        )
        result = engine.execute(battery[0])
        entry = flight.records[-1]
        assert entry.slow
        assert entry.detail is not None
        if result.provenance is not None:
            assert entry.detail["provenance"] == result.provenance.as_dict()

    def test_sharded_engine_records_stage_breakdown(self, deployment):
        network, _, columns, battery = deployment
        flight = FlightRecorder(slow_threshold_s=1e-9)
        with ShardedQueryEngine(
            network, columns, shards=4, flight=flight
        ) as engine:
            results = engine.execute_batch(battery[:6])
        assert flight.total == len(results)
        answered = [e for e in flight.records if not e.missed]
        assert answered, "battery produced no answered queries"
        for entry in answered:
            assert entry.planner == "sharded"
            assert set(entry.stage_s) == set(SHARDED_STAGES)
        slow = flight.slow_records[-1]
        assert slow.detail is not None
        assert slow.detail["shards"] == 4


# ----------------------------------------------------------------------
# Cross-process trace lanes (the acceptance trace)
# ----------------------------------------------------------------------
class TestTraceLanes:
    def test_worker_spans_graft_into_pid_lanes(self, deployment, tmp_path):
        network, _, columns, battery = deployment
        tracer = Tracer()
        obs = Instrumentation(
            tracer=tracer, metrics=MetricsRegistry(), provenance=False
        )
        with ShardedQueryEngine(
            network, columns, shards=4, workers=2, instrumentation=obs
        ) as engine:
            engine.execute_batch(battery[:12])

        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        events = json.loads(path.read_text())["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        local = os.getpid()
        foreign = {e["pid"] for e in spans if e["pid"] != local}
        assert foreign, "no worker lanes in the merged trace"

        # Every foreign lane is a real worker process carrying the
        # worker-side span vocabulary.
        by_pid = {}
        for event in spans:
            by_pid.setdefault(event["pid"], []).append(event)
        for pid in foreign:
            names = {e["name"] for e in by_pid[pid]}
            assert "worker.run" in names
            assert "worker.attach" in names
            assert "query.integrate" in names

        # Lanes are labelled: one process_name metadata event per pid.
        meta = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert meta[local].startswith("parent")
        for pid in foreign:
            assert meta[pid] == f"shard-worker {pid}"

        # Grafted worker spans sit inside their parent scatter span:
        # perf_counter is shared across fork, so the intervals are
        # directly comparable and worker time must be covered by the
        # scatter interval that awaited it.
        scatters = [e for e in by_pid[local] if e["name"] == "sharded.scatter"]
        runs = [
            e
            for pid in foreign
            for e in by_pid[pid]
            if e["name"] == "worker.run"
        ]
        assert runs
        for run in runs:
            assert any(
                s["ts"] <= run["ts"]
                and run["ts"] + run["dur"] <= s["ts"] + s["dur"]
                for s in scatters
            ), "worker.run outside every parent scatter interval"

    def test_worker_tid_is_shard_lane(self, deployment):
        network, _, columns, battery = deployment
        tracer = Tracer()
        obs = Instrumentation(
            tracer=tracer, metrics=MetricsRegistry(), provenance=False
        )
        with ShardedQueryEngine(
            network, columns, shards=3, workers=1, instrumentation=obs
        ) as engine:
            engine.execute_batch(battery[:12])
        grafted = [
            child
            for root in tracer.roots
            for child in _walk(root)
            if child.name == "worker.run"
        ]
        assert grafted
        for span in grafted:
            assert span.pid is not None and span.pid != os.getpid()
            assert span.tid == span.attributes["shard"] + 1


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


# ----------------------------------------------------------------------
# Sharded EXPLAIN parity
# ----------------------------------------------------------------------
class TestShardedExplain:
    def test_parity_with_single_process(self, deployment):
        network, form, columns, battery = deployment
        query = battery[0]
        reference_engine = QueryEngine(
            network, form,
            instrumentation=Instrumentation.on(provenance=True),
        )
        reference = reference_engine.execute(query)
        with ShardedQueryEngine(network, columns, shards=4) as engine:
            plan = engine.explain(query)
        assert plan.planner == "sharded"
        assert plan.region_ids == tuple(reference.regions)
        assert plan.boundary_length == reference.provenance.boundary_length
        assert plan.sensors_accessed == reference.nodes_accessed
        assert plan.edges_accessed == reference.edges_accessed
        assert plan.value == reference.value
        assert plan.shards == 4
        assert plan.fanout >= 1
        assert set(plan.stage_s) == set(SHARDED_STAGES)
        text = plan.format()
        assert "scatter_gather" in text
        assert "shards=4" in text

    def test_collapsed_engine_delegates(self, deployment):
        network, form, columns, battery = deployment
        with ShardedQueryEngine(network, columns, shards=1) as engine:
            assert engine.planner_in_use != "sharded"
            plan = engine.explain(battery[0])
        assert plan.shards == 0  # single-process plan, no scatter section
        assert "scatter_gather" not in plan.format()


# ----------------------------------------------------------------------
# Framework threading
# ----------------------------------------------------------------------
class TestFrameworkFlight:
    @pytest.fixture(scope="class")
    def framework(self, request):
        organic_domain = request.getfixturevalue("organic_domain")
        workload = request.getfixturevalue("workload")
        fw = InNetworkFramework(organic_domain)
        fw.deploy(
            FrameworkConfig(selector="quadtree", budget=20, seed=3,
                            flight_capacity=64, slow_query_s=1e-9)
        )
        fw.ingest_trips(workload.trips)
        return fw

    def test_config_sizes_recorder(self, framework):
        flight = framework.flight_log()
        assert flight.capacity == 64
        assert flight.slow_threshold_s == 1e-9

    def test_queries_recorded_and_promoted(self, framework, workload):
        flight = framework.flight_log()
        before = flight.total
        framework.query(BBox(1, 1, 9, 9), 0.0, workload.horizon / 2)
        assert flight.total == before + 1
        assert flight.slow_total >= 1  # threshold is one nanosecond

    def test_injected_recorder_survives_deploy(self, organic_domain):
        mine = FlightRecorder(capacity=7)
        fw = InNetworkFramework(organic_domain, flight=mine)
        fw.deploy(FrameworkConfig(selector="uniform", budget=10, seed=0))
        assert fw.flight_log() is mine
        assert mine.capacity == 7

    def test_sharded_framework_explain(self):
        # A fresh domain: the shared session fixture's edge interner
        # accumulates synthetic edges from other tests, which the
        # sharded partition would then try to locate.
        from repro.mobility import organic_city
        from repro.trajectories import WorkloadConfig, generate_workload

        road = organic_city(blocks=40, rng=np.random.default_rng(0))
        fw = InNetworkFramework.from_road_graph(road)
        fw.deploy(
            FrameworkConfig(selector="quadtree", budget=20, seed=3,
                            planner="sharded", shards=2)
        )
        workload = generate_workload(
            fw.domain,
            WorkloadConfig(n_trips=150, horizon_days=1.0,
                           mean_dwell=3600.0, seed=5),
        )
        fw.ingest_trips(workload.trips)
        try:
            plan = fw.explain(BBox(1, 1, 9, 9), 0.0, workload.horizon / 2)
            assert plan.planner == "sharded"
            assert plan.shards == 2
            assert "scatter_gather" in plan.format()
        finally:
            fw.close()

    def test_config_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FrameworkConfig(flight_capacity=0)
        with pytest.raises(ConfigurationError):
            FrameworkConfig(slow_query_s=0)
