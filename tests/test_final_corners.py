"""Final corner-coverage batch across modules."""

import numpy as np
import pytest

from repro.forms import static_count, transient_count
from repro.geometry import BBox
from repro.models import LinearModel, ModeledCountStore
from repro.network import NetworkSimulator, RadioParameters


class TestCountFnWithModeledStores:
    """The Theorem 4.2/4.3 helpers accept learned stores too."""

    @pytest.fixture()
    def setup(self, sampled_net, sampled_form):
        store = ModeledCountStore.fit(sampled_form, LinearModel)
        region = sampled_net.region_ids[:3]
        boundary = sampled_net.region_boundary(region)
        return store, boundary

    def test_static_count_helper(self, setup, workload):
        store, boundary = setup
        value = static_count(store, boundary, 0.5 * workload.horizon)
        assert np.isfinite(value)

    def test_transient_count_helper(self, setup, workload):
        store, boundary = setup
        value = transient_count(
            store, boundary, 0.2 * workload.horizon, 0.7 * workload.horizon
        )
        assert np.isfinite(value)

    def test_transient_equals_static_difference(self, setup, workload):
        store, boundary = setup
        t1, t2 = 0.3 * workload.horizon, 0.8 * workload.horizon
        assert transient_count(store, boundary, t1, t2) == pytest.approx(
            static_count(store, boundary, t2)
            - static_count(store, boundary, t1)
        )


class TestRadioModel:
    def test_receive_constant(self):
        radio = RadioParameters()
        assert radio.receive() == radio.rx_electronics

    def test_path_loss_exponent_effect(self):
        near = RadioParameters(path_loss_exponent=2.0)
        far = RadioParameters(path_loss_exponent=4.0)
        assert far.transmit(10.0) > near.transmit(10.0)

    def test_zero_distance_costs_electronics(self):
        radio = RadioParameters()
        assert radio.transmit(0.0) == radio.tx_electronics


class TestSimulatorDeterminism:
    def test_angular_order_stable(self, sampled_net):
        simulator = NetworkSimulator(sampled_net)
        sensors = list(sampled_net.sensors[:7])
        first = simulator.dispatch(sensors, strategy="perimeter_walk")
        second = simulator.dispatch(sensors, strategy="perimeter_walk")
        assert first.hops == second.hops
        assert first.load == second.load

    def test_walk_visits_every_sensor_once(self, sampled_net):
        simulator = NetworkSimulator(sampled_net)
        sensors = list(sampled_net.sensors[:9])
        report = simulator.dispatch(sensors, strategy="perimeter_walk")
        assert set(report.load) == set(sensors)
        # Interior sensors receive exactly one message; the first and
        # last also talk to the server.
        assert sorted(report.load.values())[-1] <= 2


class TestHarnessStoreOverride:
    def test_engine_accepts_custom_store(self):
        from repro.evaluation import SMALL_CONFIG, get_pipeline

        pipeline = get_pipeline(SMALL_CONFIG)
        network = pipeline.network("uniform", 8, seed=0)
        store = ModeledCountStore.fit(pipeline.form(network), LinearModel)
        engine = pipeline.engine(network, store=store)
        query = pipeline.standard_queries(0.1728, n=1)[0]
        result = engine.execute(query)
        assert result is not None

    def test_knn_network_via_harness(self):
        from repro.evaluation import SMALL_CONFIG, get_pipeline

        pipeline = get_pipeline(SMALL_CONFIG)
        tri = pipeline.network("quadtree", 10, seed=0)
        knn = pipeline.network("quadtree", 10, seed=0,
                               connectivity="knn", k=3)
        assert tri is not knn
        assert knn.name.endswith("knn")


class TestQueryWindows:
    def test_windows_inside_horizon(self, organic_domain):
        from repro.evaluation import QueryWorkloadConfig, generate_queries

        horizon = 100_000.0
        queries = generate_queries(
            organic_domain, horizon,
            QueryWorkloadConfig(n_queries=20, area_fraction=0.05,
                                window_fraction=0.5, seed=9),
        )
        for query in queries:
            assert 0.0 <= query.t1 < query.t2 <= horizon

    def test_distinct_seeds_distinct_batteries(self, organic_domain):
        from repro.evaluation import QueryWorkloadConfig, generate_queries

        a = generate_queries(
            organic_domain, 100.0,
            QueryWorkloadConfig(n_queries=5, area_fraction=0.05, seed=1),
        )
        b = generate_queries(
            organic_domain, 100.0,
            QueryWorkloadConfig(n_queries=5, area_fraction=0.05, seed=2),
        )
        assert a != b


class TestVizInternals:
    def test_scale_positive(self, grid_domain):
        from repro.viz import _scale

        assert _scale(grid_domain) > 0

    def test_query_boxes_rendered_in_order(self, grid_domain, tmp_path):
        from repro.viz import render_domain_svg

        boxes = [BBox(1, 1, 3, 3), BBox(5, 5, 8, 8)]
        body = render_domain_svg(
            grid_domain, tmp_path / "multi.svg", query_boxes=boxes
        ).read_text()
        assert body.count('stroke-dasharray') == 2


class TestChartFormatting:
    def test_fmt_ranges(self):
        from repro.evaluation.figplot import _fmt

        assert _fmt(0) == "0"
        assert "e" in _fmt(12345.0)
        assert "e" in _fmt(0.0001)
        assert _fmt(0.5) == "0.5"
