"""Unit tests for the public InNetworkFramework facade."""

import numpy as np
import pytest

from repro import FrameworkConfig, InNetworkFramework
from repro.errors import ConfigurationError, QueryError
from repro.geometry import BBox
from repro.mobility import organic_city
from repro.query import TRANSIENT, UPPER


@pytest.fixture(scope="module")
def framework(request):
    organic_domain = request.getfixturevalue("organic_domain")
    workload = request.getfixturevalue("workload")
    fw = InNetworkFramework(organic_domain)
    fw.deploy(FrameworkConfig(selector="quadtree", budget=20, seed=3))
    fw.ingest_trips(workload.trips)
    return fw


class TestConfig:
    def test_defaults_valid(self):
        FrameworkConfig()

    def test_unknown_selector(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(selector="psychic")

    def test_unknown_store(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(store="csv")

    def test_tiny_budget(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(budget=1)

    def test_bad_connectivity(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(connectivity="teleport")


class TestLifecycle:
    def test_from_road_graph(self):
        road = organic_city(blocks=40, rng=np.random.default_rng(0))
        fw = InNetworkFramework.from_road_graph(road)
        assert fw.domain.block_count > 0

    def test_query_before_deploy_rejected(self, organic_domain):
        fw = InNetworkFramework(organic_domain)
        with pytest.raises(QueryError):
            fw.query(BBox(0, 0, 5, 5), 0, 1)

    def test_exact_before_ingest_rejected(self, organic_domain):
        fw = InNetworkFramework(organic_domain)
        with pytest.raises(QueryError):
            fw.query_exact(BBox(0, 0, 5, 5), 0, 1)

    def test_submodular_needs_history(self, organic_domain):
        fw = InNetworkFramework(organic_domain)
        with pytest.raises(ConfigurationError):
            fw.deploy(FrameworkConfig(selector="submodular", budget=10))

    def test_submodular_with_history(self, organic_domain, workload):
        fw = InNetworkFramework(organic_domain)
        fw.record_query_region(BBox(2, 2, 8, 8))
        fw.record_query_region(BBox(1, 1, 5, 5))
        network = fw.deploy(
            FrameworkConfig(selector="submodular", budget=30)
        )
        assert network.walls

    def test_redeploy_reingests(self, organic_domain, workload):
        fw = InNetworkFramework(organic_domain)
        fw.deploy(FrameworkConfig(selector="uniform", budget=10, seed=0))
        fw.ingest_trips(workload.trips[:50])
        fw.deploy(FrameworkConfig(selector="uniform", budget=15, seed=1))
        result = fw.query(BBox(1, 1, 9, 9), 0, workload.horizon / 2)
        assert result is not None  # store rebuilt after redeploy


class TestQuerying:
    def test_lower_bound_leq_exact_leq_upper(self, framework, workload):
        box = BBox(1.5, 1.5, 8.5, 8.5)
        t2 = 0.5 * workload.horizon
        lower = framework.query(box, 0.0, t2, bound="lower")
        upper = framework.query(box, 0.0, t2, bound="upper")
        exact = framework.query_exact(box, 0.0, t2)
        if not (lower.missed or upper.missed):
            assert lower.value <= exact.value <= upper.value

    def test_transient_kind(self, framework, workload):
        box = BBox(2, 2, 8, 8)
        result = framework.query(
            box, 0.2 * workload.horizon, 0.7 * workload.horizon,
            kind=TRANSIENT,
        )
        assert result is not None

    def test_deployed_fraction(self, framework):
        assert 0.0 < framework.deployed_fraction <= 1.0

    def test_storage_reporting(self, framework):
        assert framework.storage_bytes > 0

    def test_repr(self, framework):
        assert "InNetworkFramework" in repr(framework)


class TestLearnedStores:
    @pytest.mark.parametrize(
        "store", ["linear", "polynomial", "piecewise", "histogram"]
    )
    def test_learned_store_answers_queries(
        self, organic_domain, workload, store
    ):
        fw = InNetworkFramework(organic_domain)
        fw.deploy(
            FrameworkConfig(selector="quadtree", budget=16,
                            store=store, seed=3)
        )
        fw.ingest_trips(workload.trips)
        result = fw.query(BBox(1, 1, 9, 9), 0.0, 0.5 * workload.horizon)
        assert not result.missed

    def test_learned_store_smaller_than_exact(
        self, organic_domain, workload
    ):
        exact_fw = InNetworkFramework(organic_domain)
        exact_fw.deploy(
            FrameworkConfig(selector="quadtree", budget=16, seed=3)
        )
        exact_fw.ingest_trips(workload.trips)

        learned_fw = InNetworkFramework(organic_domain)
        learned_fw.deploy(
            FrameworkConfig(selector="quadtree", budget=16,
                            store="linear", seed=3)
        )
        learned_fw.ingest_trips(workload.trips)
        assert learned_fw.storage_bytes < exact_fw.storage_bytes
