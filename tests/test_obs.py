"""Unit and integration tests for the repro.obs observability layer.

Covers the tracer (nesting, Chrome export, tree rendering), the metrics
registry (instruments, exports, global swap), logging (byte-identical
default output), provenance-carrying query execution, the batched
elapsed-time attribution fix, and the CLI's ``--trace``/``--metrics``
acceptance path.
"""

from __future__ import annotations

import json
import re
import time

import pytest

from repro.geometry import BBox
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    NULL_INSTRUMENTATION,
    NULL_REGISTRY,
    NULL_TRACER,
    Tracer,
    configure_logging,
    get_logger,
    get_registry,
    kv,
    set_registry,
    use_registry,
)
from repro.query import LOWER, QueryEngine, RangeQuery, TRANSIENT, UPPER


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_follows_with_blocks(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner.a", "inner.b"]
        assert root.duration >= sum(c.duration for c in root.children)

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("op", n=3) as span:
            span.set(result="ok")
        assert tracer.roots[0].attributes == {"n": 3, "result": "ok"}

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("b"):
            pass
        assert len(tracer.find("b")) == 2
        assert [s.name for s in tracer.walk()] == ["a", "b", "b"]

    def test_exception_closes_dangling_spans(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                ctx = tracer.span("leaked")
                ctx.__enter__()
                raise RuntimeError("boom")
        for span in tracer.walk():
            assert span.end is not None

    def test_chrome_trace_export(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", kind="demo"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        outer, inner = events
        assert outer["ph"] == "X" and inner["ph"] == "X"
        assert outer["args"] == {"kind": "demo"}
        # Child interval contained in the parent's.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_chrome_trace_coerces_attributes(self):
        tracer = Tracer()
        with tracer.span("op", ids=(1, 2), obj=object()):
            pass
        args = tracer.to_chrome_trace()["traceEvents"][0]["args"]
        assert args["ids"] == [1, 2]
        assert isinstance(args["obj"], str)

    def test_format_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", n=1):
                pass
        tree = tracer.format_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("outer:")
        assert lines[1].startswith("  inner:")
        assert "[n=1]" in lines[1]

    def test_null_tracer_roots_is_immutable(self):
        from repro.obs.trace import NullTracer

        # A class-level list here would be shared mutable state: one
        # accidental append would leak into every tracer.
        assert NULL_TRACER.roots == ()
        assert isinstance(NULL_TRACER.roots, tuple)
        assert NullTracer().roots == ()
        with pytest.raises((AttributeError, TypeError)):
            NULL_TRACER.roots.append("leak")

    def test_double_close_does_not_unwind_open_spans(self):
        tracer = Tracer()
        keep = tracer.span("keep")
        keep.__enter__()
        victim = tracer.span("victim")
        victim.__enter__()
        victim.__exit__(None, None, None)
        # Second close of an already-closed span must be a no-op, not
        # pop "keep" off the stack.
        victim.__exit__(None, None, None)
        with tracer.span("child"):
            pass
        keep.__exit__(None, None, None)
        (root,) = tracer.roots
        assert root.name == "keep"
        assert [c.name for c in root.children] == ["victim", "child"]
        assert all(s.end is not None for s in tracer.walk())

    def test_null_tracer_is_inert(self, tmp_path):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", n=1) as span:
            span.set(more=2)
        assert NULL_TRACER.find("anything") == []
        assert NULL_TRACER.to_chrome_trace() == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }
        assert NULL_TRACER.format_tree() == ""
        path = tmp_path / "null.json"
        NULL_TRACER.export_chrome(path)
        assert json.loads(path.read_text())["traceEvents"] == []


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_memoised_and_labelled(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", kind="x")
        a.inc()
        a.inc(2)
        assert registry.counter("c_total", kind="x") is a
        assert registry.value("c_total", kind="x") == 3
        assert registry.value("c_total", kind="y") == 0
        registry.counter("c_total", kind="y").inc(5)
        assert registry.sum_values("c_total") == 8

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge(self):
        registry = MetricsRegistry()
        g = registry.gauge("g")
        g.set(10)
        g.inc(-3)
        assert registry.value("g") == 7

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 5000):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(5055.5)
        assert h.cumulative() == [
            (1, 1),
            (10, 2),
            (100, 3),
            (float("inf"), 4),
        ]

    def test_histogram_quantile_interpolates(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(10.0,))
        for _ in range(4):
            h.observe(5.0)
        # 4 observations spread linearly over [0, 10): p50 target is
        # the 2nd, half-way through the only bucket.
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_histogram_quantile_edge_cases(self):
        import math

        registry = MetricsRegistry()
        empty = registry.histogram("empty", buckets=(1.0,))
        assert math.isnan(empty.quantile(0.5))
        overflow = registry.histogram("over", buckets=(1.0, 2.0))
        overflow.observe(100.0)
        # Overflow observations clamp to the top finite bound.
        assert overflow.quantile(0.99) == 2.0
        with pytest.raises(ValueError):
            overflow.quantile(1.5)

    def test_histogram_quantile_spans_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            h.observe(value)
        # p50 target = 2nd observation: first in the (1, 2] bucket.
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(0.75) == pytest.approx(2.0)
        assert 2.0 < h.quantile(0.9) <= 4.0

    def test_prometheus_nonfinite_values_round_trip(self):
        registry = MetricsRegistry()
        registry.gauge("g_inf").set(float("inf"))
        registry.gauge("g_ninf").set(float("-inf"))
        registry.gauge("g_nan").set(float("nan"))
        registry.gauge("g_float").set(2.5)
        text = registry.to_prometheus()
        # Exposition-format spellings, not Python's repr().
        assert "g_inf +Inf" in text
        assert "g_ninf -Inf" in text
        assert "g_nan NaN" in text
        assert "inf\n" not in text and " nan" not in text
        # Every sample line parses back losslessly with float().
        import math

        parsed = {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            parsed[name] = float(value)
        assert parsed["g_inf"] == math.inf
        assert parsed["g_ninf"] == -math.inf
        assert math.isnan(parsed["g_nan"])
        assert parsed["g_float"] == 2.5

    def test_prometheus_export(self):
        registry = MetricsRegistry()
        registry.counter("c_total", help="a counter", kind="x").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1, 2)).observe(1)
        text = registry.to_prometheus()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{kind="x"} 2' in text
        assert "g 1.5" in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 1" in text
        assert "h_count 1" in text

    def test_json_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c_total", kind="x").inc()
        snap = registry.to_json()
        assert snap["counters"] == {'c_total{kind="x"}': 1}

    def test_use_registry_swaps_and_restores(self):
        before = get_registry()
        with use_registry() as fresh:
            assert get_registry() is fresh
            get_registry().counter("inside").inc()
        assert get_registry() is before
        assert before.value("inside") == 0

    def test_set_registry_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("c").inc(5)
        NULL_REGISTRY.gauge("g").set(3)
        NULL_REGISTRY.histogram("h").observe(1)
        assert NULL_REGISTRY.value("c") == 0
        assert NULL_REGISTRY.to_prometheus() == ""
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
@pytest.fixture()
def default_logging():
    """Restore default verbosity after each logging test."""
    yield
    configure_logging(0)


class TestLogging:
    def test_default_output_matches_print(self, capsys, default_logging):
        configure_logging(0)
        get_logger("t").info("hello world")
        assert capsys.readouterr().out == "hello world\n"

    def test_debug_hidden_by_default(self, capsys, default_logging):
        configure_logging(0)
        get_logger("t").debug("invisible")
        assert capsys.readouterr().out == ""

    def test_quiet_suppresses_info(self, capsys, default_logging):
        configure_logging(-1)
        log = get_logger("t")
        log.info("hidden")
        log.warning("shown")
        assert capsys.readouterr().out == "shown\n"

    def test_verbose_prefixes_records(self, capsys, default_logging):
        configure_logging(1)
        get_logger("t").debug("detail")
        assert capsys.readouterr().out == "D repro.t: detail\n"

    def test_kv_rendering(self):
        assert kv(a=1, rate=0.25, name="x") == "a=1 rate=0.25 name=x"
        assert kv(msg="two words") == "msg='two words'"


# ----------------------------------------------------------------------
# Instrumentation bundle
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_null_bundle_inactive(self):
        assert Instrumentation.off() is NULL_INSTRUMENTATION
        assert not NULL_INSTRUMENTATION.active
        assert not NULL_INSTRUMENTATION.tracer.enabled

    def test_on_builds_live_bundle(self):
        obs = Instrumentation.on(provenance=True)
        assert obs.active
        assert obs.tracer.enabled
        assert obs.metrics is get_registry()


# ----------------------------------------------------------------------
# Provenance + batched attribution (the execute_batch fix)
# ----------------------------------------------------------------------
class _SlowNetwork:
    """Delegating wrapper that makes region resolution measurably slow."""

    def __init__(self, inner, delay: float) -> None:
        self._inner = inner
        self._delay = delay

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def lower_regions(self, junctions):
        time.sleep(self._delay)
        return self._inner.lower_regions(junctions)


class TestBatchAttribution:
    DELAY = 0.05

    def _queries(self, workload, n=3):
        t2 = 0.5 * workload.horizon
        return [RangeQuery(BBox(2, 2, 8, 8), 0.0, t2) for _ in range(n)]

    def test_shared_fill_metered_separately(
        self, sampled_net, sampled_form, workload
    ):
        queries = self._queries(workload)
        with use_registry() as registry:
            engine = QueryEngine(
                _SlowNetwork(sampled_net, self.DELAY),
                sampled_form,
                instrumentation=Instrumentation.on(provenance=True),
            )
            results = engine.execute_batch(queries)
        first, *rest = results
        assert not first.cache_served
        assert all(r.cache_served for r in rest)
        # The slow region fill is excluded from every per-query elapsed,
        # including the query that triggered it.
        for result in results:
            assert result.elapsed < self.DELAY
        assert first.provenance.shared_fill_s >= self.DELAY
        assert (
            registry.value("repro_query_batch_fill_seconds_total")
            >= self.DELAY
        )
        assert registry.value(
            "repro_query_batch_cache_total", cache="regions", outcome="fill"
        ) == 1
        assert registry.value(
            "repro_query_batch_cache_total", cache="regions", outcome="hit"
        ) == len(rest)
        for result in rest:
            assert result.provenance.cache_hits == {
                "junctions": True,
                "regions": True,
                "boundary": True,
                "sensors": True,
            }

    def test_batch_identical_to_many_under_instrumentation(
        self, sampled_net, sampled_form, workload
    ):
        t2 = 0.5 * workload.horizon
        queries = [
            RangeQuery(BBox(2, 2, 8, 8), 0.0, t2, bound=LOWER),
            RangeQuery(BBox(2, 2, 8, 8), 0.0, t2, bound=UPPER),
            RangeQuery(BBox(1, 1, 9, 9), 0.2 * t2, t2, kind=TRANSIENT),
            RangeQuery(BBox(2, 2, 8, 8), 0.0, t2, bound=LOWER),
            RangeQuery(BBox(0.01, 0.01, 0.02, 0.02), 0.0, t2),
        ]
        with use_registry():
            engine = QueryEngine(
                sampled_net,
                sampled_form,
                instrumentation=Instrumentation.on(provenance=True),
            )
            batch = engine.execute_batch(queries)
            many = engine.execute_many(queries)
        assert len(batch) == len(many)
        for b, m in zip(batch, many):
            assert b.missed == m.missed
            assert b.value == m.value
            assert tuple(sorted(b.regions)) == tuple(sorted(m.regions))
            assert b.edges_accessed == m.edges_accessed
            assert b.nodes_accessed == m.nodes_accessed

    def test_execute_provenance_phases(
        self, sampled_net, sampled_form, workload
    ):
        engine = QueryEngine(
            sampled_net,
            sampled_form,
            instrumentation=Instrumentation.on(provenance=True),
        )
        t2 = 0.5 * workload.horizon
        result = engine.execute(RangeQuery(BBox(2, 2, 8, 8), 0.0, t2))
        assert not result.missed
        prov = result.provenance
        assert prov is not None
        assert not prov.cache_served
        assert prov.junction_count > 0
        assert prov.boundary_length == result.edges_accessed
        assert set(prov.phase_s) == {
            "resolve_junctions",
            "approximate_region",
            "build_boundary",
            "integrate",
            "account_sensors",
        }
        assert sum(prov.phase_s.values()) <= result.elapsed + 1e-6

    def test_default_engine_attaches_no_provenance(
        self, sampled_net, sampled_form, workload
    ):
        engine = QueryEngine(sampled_net, sampled_form)
        t2 = 0.5 * workload.horizon
        result = engine.execute(RangeQuery(BBox(2, 2, 8, 8), 0.0, t2))
        assert result.provenance is None
        assert not result.cache_served


# ----------------------------------------------------------------------
# CLI acceptance: demo --trace/--metrics
# ----------------------------------------------------------------------
class TestDemoObservability:
    @pytest.fixture(scope="class")
    def demo_run(self, tmp_path_factory):
        from repro.__main__ import main

        tmp_path = tmp_path_factory.mktemp("demo-obs")
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            status = main(
                [
                    "demo",
                    "--blocks", "60",
                    "--trips", "200",
                    "--fraction", "0.4",
                    "--seed", "1",
                    "--trace", str(trace_path),
                    "--metrics", str(metrics_path),
                ]
            )
        assert status == 0
        return buffer.getvalue(), trace_path, metrics_path

    def test_trace_is_valid_chrome_json(self, demo_run):
        _, trace_path, _ = demo_run
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert {"name", "ts", "pid", "tid"} <= set(event)

    def test_trace_nests_deploy_ingest_query(self, demo_run):
        _, trace_path, _ = demo_run
        events = json.loads(trace_path.read_text())["traceEvents"]
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        for name in ("planarize", "deploy", "ingest", "query.execute"):
            assert name in by_name, f"missing span {name}"

        def contained(child, parent):
            return (
                parent["ts"] - 1e-3 <= child["ts"]
                and child["ts"] + child["dur"]
                <= parent["ts"] + parent["dur"] + 1e-3
            )

        (deploy,) = by_name["deploy"]
        assert any(
            contained(e, deploy) for e in by_name["deploy.select_sensors"]
        )
        (ingest,) = by_name["ingest"]
        assert any(
            contained(e, ingest) for e in by_name["ingest.build_form"]
        )
        assert all(
            any(contained(e, q) for q in by_name["query.execute"])
            for e in by_name["query.integrate"]
        )

    def test_metrics_match_printed_numbers(self, demo_run):
        out, _, metrics_path = demo_run
        text = metrics_path.read_text()
        ingested = int(
            re.search(r"ingested: (\d+) crossing events", out).group(1)
        )
        assert f"repro_events_ingested_total {ingested}" in text
        deployed = int(re.search(r"deployed: (\d+) sensors", out).group(1))
        assert f"repro_deployed_sensors {deployed}" in text
        # The demo runs exactly two queries: approximate + exact.
        totals = re.findall(r"^repro_queries_total\{[^}]*\} (\d+)$",
                            text, flags=re.M)
        assert sum(int(v) for v in totals) == 2

    def test_trace_and_metrics_paths_reported(self, demo_run):
        out, trace_path, metrics_path = demo_run
        assert f"trace: wrote {trace_path}" in out
        assert f"metrics: wrote {metrics_path}" in out
