"""Unit tests for MobilityDomain (incl. EXT topology)."""

import numpy as np
import pytest

from repro.errors import GraphStructureError, QueryError
from repro.geometry import BBox
from repro.mobility import EXT, MobilityDomain, grid_city
from repro.planar import PlanarGraph, canonical_edge


class TestConstruction:
    def test_rejects_disconnected(self):
        graph = grid_city(rows=4, cols=4, jitter=0.0, drop_fraction=0.0)
        graph.add_node("iso_a", (50, 50))
        graph.add_node("iso_b", (51, 50))
        graph.add_node("iso_c", (50, 51))
        graph.add_edge("iso_a", "iso_b")
        graph.add_edge("iso_b", "iso_c")
        graph.add_edge("iso_c", "iso_a")
        with pytest.raises(GraphStructureError):
            MobilityDomain(graph)

    def test_rejects_tiny(self):
        graph = PlanarGraph.from_edges({0: (0, 0), 1: (1, 0)}, [(0, 1)])
        with pytest.raises(GraphStructureError):
            MobilityDomain(graph)

    def test_counts(self, grid_domain):
        assert grid_domain.junction_count == 49
        assert grid_domain.block_count == 36
        # Sensing edges = roads + one EXT edge per rim junction.
        assert grid_domain.sensing_edge_count == (
            grid_domain.graph.edge_count
            + len(grid_domain.boundary_junctions)
        )


class TestSpatialLookups:
    def test_nearest_junction(self, grid_domain):
        junction = grid_domain.nearest_junction((0.1, 0.1))
        assert grid_domain.position(junction) == (0.0, 0.0)

    def test_junctions_in_bbox(self, grid_domain):
        # Grid spans [0, 10] with 7x7 junctions at spacing 10/6.
        found = grid_domain.junctions_in_bbox(BBox(0, 0, 10 / 6 + 0.01, 10 / 6 + 0.01))
        assert len(found) == 4

    def test_junctions_in_empty_bbox(self, grid_domain):
        assert grid_domain.junctions_in_bbox(BBox(0.1, 0.1, 0.2, 0.2)) == set()


class TestBoundaryTopology:
    def test_boundary_junctions_on_rim(self, grid_domain):
        # 7x7 grid rim: 24 junctions.
        assert len(grid_domain.boundary_junctions) == 24

    def test_entry_path_structure(self, grid_domain):
        center = grid_domain.nearest_junction((5, 5))
        path = grid_domain.entry_path(center)
        assert path[0] == EXT
        assert path[-1] == center
        assert path[1] in grid_domain.boundary_junctions
        # Consecutive non-EXT hops are road edges.
        for a, b in zip(path[1:], path[2:]):
            assert grid_domain.graph.has_edge(a, b)

    def test_entry_path_boundary_junction_is_short(self, grid_domain):
        rim = grid_domain.boundary_junctions[0]
        assert grid_domain.entry_path(rim) == [EXT, rim]

    def test_exit_path_reverses_entry(self, grid_domain):
        center = grid_domain.nearest_junction((5, 5))
        assert grid_domain.exit_path(center) == list(
            reversed(grid_domain.entry_path(center))
        )

    def test_sensing_neighbors_include_ext_on_rim(self, grid_domain):
        rim = grid_domain.boundary_junctions[0]
        assert EXT in grid_domain.sensing_neighbors(rim)

    def test_sensing_neighbors_interior_excludes_ext(self, grid_domain):
        center = grid_domain.nearest_junction((5, 5))
        assert EXT not in grid_domain.sensing_neighbors(center)

    def test_sensing_neighbors_of_ext(self, grid_domain):
        assert grid_domain.sensing_neighbors(EXT) == set(
            grid_domain.boundary_junctions
        )


class TestBoundaryChain:
    def test_inward_boundary_of_interior_region(self, grid_domain):
        center = grid_domain.nearest_junction((5, 5))
        chain = grid_domain.inward_boundary_edges({center})
        assert all(head == center for _, head in chain)
        assert len(chain) == grid_domain.graph.degree(center)

    def test_inward_boundary_includes_ext_for_rim_region(self, grid_domain):
        rim = grid_domain.boundary_junctions[0]
        chain = grid_domain.inward_boundary_edges({rim})
        assert (EXT, rim) in chain

    def test_internal_edges_excluded(self, grid_domain):
        a = grid_domain.nearest_junction((5, 5))
        neighbours = grid_domain.graph.neighbors(a)
        b = next(iter(neighbours))
        chain = grid_domain.inward_boundary_edges({a, b})
        assert (a, b) not in chain and (b, a) not in chain

    def test_region_with_ext_rejected(self, grid_domain):
        with pytest.raises(QueryError):
            grid_domain.inward_boundary_edges({EXT})

    def test_sensing_edges_enumeration(self, grid_domain):
        edges = list(grid_domain.sensing_edges())
        assert len(edges) == grid_domain.sensing_edge_count
        ext_edges = [e for e in edges if EXT in e]
        assert len(ext_edges) == len(grid_domain.boundary_junctions)
