"""Unit tests for trips, crossing events and workload generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.forms import TrackingForm
from repro.mobility import EXT
from repro.trajectories import (
    Trip,
    WorkloadConfig,
    all_events,
    distinct_visitors,
    generate_workload,
    ingest,
    net_change,
    occupancy_count,
    plan_trip,
    trip_events,
)


class TestTrip:
    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            Trip(object_id=0, visits=())

    def test_decreasing_times_rejected(self):
        with pytest.raises(WorkloadError):
            Trip(object_id=0, visits=(("a", 5.0), ("b", 1.0)))

    def test_position_before_start_is_ext(self):
        trip = Trip(0, (("a", 10.0), ("b", 20.0)))
        assert trip.position_at(5.0) == EXT

    def test_position_at_visits(self):
        trip = Trip(0, (("a", 10.0), ("b", 20.0), ("c", 30.0)))
        assert trip.position_at(10.0) == "a"
        assert trip.position_at(19.9) == "a"
        assert trip.position_at(20.0) == "b"
        assert trip.position_at(29.9) == "b"

    def test_position_from_end_is_ext(self):
        trip = Trip(0, (("a", 10.0), ("b", 20.0)))
        assert trip.position_at(20.0) == EXT
        assert trip.position_at(99.0) == EXT

    def test_properties(self):
        trip = Trip(7, (("a", 1.0), ("b", 2.0)))
        assert trip.origin == "a"
        assert trip.destination == "b"
        assert trip.start_time == 1.0
        assert trip.end_time == 2.0


class TestPlanTrip:
    def test_route_follows_shortest_path(self, grid_domain):
        origin = grid_domain.nearest_junction((0, 0))
        destination = grid_domain.nearest_junction((10, 0))
        trip = plan_trip(grid_domain, 0, origin, destination,
                         depart_time=0.0, speed=1.0)
        assert trip.origin == origin
        assert trip.destination == destination
        assert trip.end_time == pytest.approx(10.0)

    def test_dwell_extends_end_time(self, grid_domain):
        origin = grid_domain.nearest_junction((0, 0))
        destination = grid_domain.nearest_junction((10, 0))
        trip = plan_trip(grid_domain, 0, origin, destination,
                         depart_time=0.0, speed=1.0, dwell_time=100.0)
        assert trip.end_time == pytest.approx(110.0)
        assert trip.position_at(50.0) == destination

    def test_zero_length_trip_observable(self, grid_domain):
        node = grid_domain.nearest_junction((5, 5))
        trip = plan_trip(grid_domain, 0, node, node, 0.0, 1.0)
        assert trip.end_time > trip.start_time

    def test_invalid_speed(self, grid_domain):
        node = grid_domain.nearest_junction((5, 5))
        with pytest.raises(WorkloadError):
            plan_trip(grid_domain, 0, node, node, 0.0, 0.0)


class TestTripEvents:
    def test_entry_and_exit_walks_present(self, grid_domain):
        center = grid_domain.nearest_junction((5, 5))
        trip = plan_trip(grid_domain, 0, center, center, 100.0, 1.0,
                         dwell_time=50.0)
        events = trip_events(grid_domain, trip)
        assert events[0].tail == EXT
        assert events[-1].head == EXT
        assert all(e.t == 100.0 for e in events if e.t <= 100.0)

    def test_movement_events_timed_at_arrival(self, grid_domain):
        origin = grid_domain.nearest_junction((0, 0))
        destination = grid_domain.nearest_junction((10 / 6, 0))
        trip = plan_trip(grid_domain, 0, origin, destination, 0.0, 1.0,
                         dwell_time=10.0)
        moves = [
            e for e in trip_events(grid_domain, trip)
            if EXT not in (e.tail, e.head)
        ]
        assert len(moves) == 1
        assert moves[0].tail == origin
        assert moves[0].head == destination
        assert moves[0].t == pytest.approx(10 / 6)

    def test_events_sorted_globally(self, organic_domain, workload):
        events = all_events(organic_domain, workload.trips[:50])
        times = [e.t for e in events]
        assert times == sorted(times)

    def test_ingest_counts(self, grid_domain):
        center = grid_domain.nearest_junction((5, 5))
        trip = plan_trip(grid_domain, 0, center, center, 0.0, 1.0, 10.0)
        form = TrackingForm()
        count = ingest(trip_events(grid_domain, trip), form)
        assert count == form.total_events
        assert count > 0


class TestGroundTruth:
    def test_occupancy_matches_positions(self, grid_domain):
        a = grid_domain.nearest_junction((0, 0))
        b = grid_domain.nearest_junction((10, 10))
        trip = plan_trip(grid_domain, 0, a, b, 0.0, 1.0, dwell_time=5.0)
        region = {b}
        assert occupancy_count([trip], region, trip.end_time - 1.0) == 1
        assert occupancy_count([trip], region, trip.end_time + 1.0) == 0

    def test_net_change(self, grid_domain):
        a = grid_domain.nearest_junction((0, 0))
        b = grid_domain.nearest_junction((10, 10))
        trip = plan_trip(grid_domain, 0, a, b, 0.0, 1.0, dwell_time=5.0)
        assert net_change([trip], {b}, 0.0, trip.end_time - 1.0) == 1

    def test_distinct_visitors_counts_transients(self, grid_domain):
        a = grid_domain.nearest_junction((0, 0))
        b = grid_domain.nearest_junction((10, 0))
        trip = plan_trip(grid_domain, 0, a, b, 0.0, 1.0, dwell_time=5.0)
        middle = grid_domain.nearest_junction((5, 0))
        # The trip passes through `middle` but never dwells there.
        assert distinct_visitors([trip], {middle}, 0.0, 20.0) == 1
        assert occupancy_count([trip], {middle}, 20.0) == 0

    def test_distinct_visitors_trip_ending_exactly_at_t1(self, grid_domain):
        """Regression: a trip with ``end_time == t1`` that occupied its
        final junction (inside the region) up to t1 is a visitor —
        interval inclusion is consistent with the right-continuous
        ``(t1, t2]`` convention of ``TrackingForm.count_between``."""
        a = grid_domain.nearest_junction((0, 0))
        b = grid_domain.nearest_junction((10, 10))
        trip = plan_trip(grid_domain, 0, a, b, 0.0, 1.0, dwell_time=5.0)
        region = {b}
        t1 = trip.end_time
        # Previously the `end_time <= t1` pre-filter skipped this trip.
        assert distinct_visitors([trip], region, t1, t1 + 100.0) == 1
        # Strictly after the trip's lifetime it is not a visitor.
        assert distinct_visitors([trip], region, t1 + 1.0, t1 + 100.0) == 0
        # A region the trip never entered stays at zero.
        outside = {grid_domain.nearest_junction((0, 10))}
        assert distinct_visitors([trip], outside, t1, t1 + 100.0) == 0


class TestWorkloadGeneration:
    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_trips=0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(hotspot_bias=1.5)
        with pytest.raises(WorkloadError):
            WorkloadConfig(horizon_days=0)

    def test_reproducible(self, organic_domain):
        config = WorkloadConfig(n_trips=40, seed=9)
        w1 = generate_workload(organic_domain, config)
        w2 = generate_workload(organic_domain, config)
        assert [t.visits for t in w1.trips] == [t.visits for t in w2.trips]

    def test_trip_count(self, workload):
        assert len(workload.trips) == 400

    def test_departures_within_horizon(self, workload):
        horizon = workload.horizon
        assert all(0 <= t.start_time < horizon for t in workload.trips)

    def test_trips_sorted_by_departure(self, workload):
        starts = [t.start_time for t in workload.trips]
        assert starts == sorted(starts)

    def test_hotspot_bias_concentrates_origins(self, organic_domain):
        biased = generate_workload(
            organic_domain,
            WorkloadConfig(n_trips=300, hotspot_bias=1.0,
                           hotspot_spread=0.02, seed=3),
        )
        uniform = generate_workload(
            organic_domain,
            WorkloadConfig(n_trips=300, hotspot_bias=0.0, seed=3),
        )
        assert (
            len({t.origin for t in biased.trips})
            < len({t.origin for t in uniform.trips})
        )

    def test_events_cached(self, organic_domain, workload):
        first = workload.events(organic_domain)
        second = workload.events(organic_domain)
        assert first is second
