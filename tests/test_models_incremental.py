"""Unit tests for the incremental learned store (§4.8 extension)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import (
    BufferedEdgeStore,
    IncrementalEdgeStore,
    PiecewiseLinearModel,
)


def fill(store, times, edge=("a", "b")):
    for t in times:
        store.record(edge[0], edge[1], float(t))


class TestValidation:
    def test_invalid_buffer_size(self):
        with pytest.raises(ModelError):
            IncrementalEdgeStore(PiecewiseLinearModel, buffer_size=0)

    def test_invalid_resample_points(self):
        with pytest.raises(ModelError):
            IncrementalEdgeStore(PiecewiseLinearModel, resample_points=1)

    def test_out_of_order_rejected(self):
        store = IncrementalEdgeStore(PiecewiseLinearModel)
        store.record("a", "b", 10.0)
        with pytest.raises(ModelError):
            store.record("a", "b", 5.0)


class TestCounting:
    def test_exact_while_buffered(self):
        store = IncrementalEdgeStore(PiecewiseLinearModel, buffer_size=100)
        fill(store, range(50))
        assert store.count_entering(("a", "b"), 25.0) == 26

    def test_total_preserved_across_flushes(self):
        store = IncrementalEdgeStore(
            PiecewiseLinearModel, buffer_size=64
        )
        times = np.sort(np.random.default_rng(0).uniform(0, 1000, 400))
        fill(store, times)
        total = store.count_entering(("a", "b"), 2000.0)
        assert total == pytest.approx(400, abs=2)

    def test_covers_whole_history_unlike_windowed(self):
        """The windowed store saturates for queries older than 2n
        events; the incremental store still answers them."""
        rng = np.random.default_rng(1)
        times = np.sort(rng.uniform(0, 10_000, 2000))
        incremental = IncrementalEdgeStore(
            PiecewiseLinearModel, buffer_size=128
        )
        windowed = BufferedEdgeStore(PiecewiseLinearModel, buffer_size=128)
        fill(incremental, times)
        fill(windowed, times)

        probe = float(times[500])  # deep in the past
        exact = 501
        inc_error = abs(incremental.count_entering(("a", "b"), probe) - exact)
        win_error = abs(windowed.count_entering(("a", "b"), probe) - exact)
        assert inc_error < win_error
        assert inc_error < 0.15 * 2000

    def test_storage_constant(self):
        store = IncrementalEdgeStore(
            PiecewiseLinearModel, buffer_size=64
        )
        fill(store, range(10_000))
        # One model + at most one partial buffer.
        assert store.storage_bytes <= (64 + 64) * 8

    def test_directions_independent(self):
        store = IncrementalEdgeStore(PiecewiseLinearModel, buffer_size=8)
        fill(store, range(20), edge=("a", "b"))
        fill(store, range(5), edge=("b", "a"))
        assert store.net_until(("a", "b"), 100.0) == pytest.approx(
            15, abs=2
        )

    def test_net_between_inverted_rejected(self):
        store = IncrementalEdgeStore(PiecewiseLinearModel)
        with pytest.raises(ModelError):
            store.net_between(("a", "b"), 5.0, 1.0)

    def test_empty_edge(self):
        store = IncrementalEdgeStore(PiecewiseLinearModel)
        assert store.count_entering(("x", "y"), 10.0) == 0.0
        assert store.stream_count == 0

    def test_drift_bounded_over_many_flushes(self):
        """Compounded refits drift, but stay within a usable envelope."""
        store = IncrementalEdgeStore(
            PiecewiseLinearModel, buffer_size=50, resample_points=64
        )
        times = np.linspace(0, 1000, 1000)  # uniform: easy to refit
        fill(store, times)
        for probe, exact in ((250.0, 251), (500.0, 501), (750.0, 751)):
            assert store.count_entering(("a", "b"), probe) == pytest.approx(
                exact, rel=0.1
            )
