"""Unit tests for dual graphs and planarization."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.planar import (
    PlanarGraph,
    build_dual,
    largest_component,
    planarize,
    prune_degree_one,
    trace_faces,
)


def grid_graph(n=4):
    graph = PlanarGraph()
    for i in range(n):
        for j in range(n):
            graph.add_node((i, j), (float(i), float(j)))
    for i in range(n):
        for j in range(n):
            if i < n - 1:
                graph.add_edge((i, j), (i + 1, j))
            if j < n - 1:
                graph.add_edge((i, j), (i, j + 1))
    return graph


class TestDual:
    def test_node_per_face(self):
        graph = grid_graph()
        faces = trace_faces(graph)
        dual = build_dual(graph, faces)
        assert dual.node_count == len(faces.faces)
        assert len(dual.interior_nodes) == len(faces.interior_faces)

    def test_outer_node_present(self):
        dual = build_dual(grid_graph())
        assert dual.outer_node is not None
        assert dual.outer_node not in dual.interior_nodes

    def test_edge_faces_cover_every_primal_edge(self):
        graph = grid_graph()
        dual = build_dual(graph)
        assert len(dual.edge_faces) == graph.edge_count

    def test_faces_of_primal_edge(self):
        graph = grid_graph()
        dual = build_dual(graph)
        left, right = dual.faces_of_primal_edge((1, 1), (2, 1))
        assert left != right

    def test_unknown_edge_raises(self):
        dual = build_dual(grid_graph())
        with pytest.raises(GraphStructureError):
            dual.faces_of_primal_edge((0, 0), (5, 5))

    def test_is_bridge_false_on_grid(self):
        dual = build_dual(grid_graph())
        assert not dual.is_bridge((0, 0), (1, 0))

    def test_dual_positions_inside_faces(self):
        graph = grid_graph()
        faces = trace_faces(graph)
        dual = build_dual(graph, faces)
        for face in faces.interior_faces:
            x, y = dual.position(face.id)
            xs = [p[0] for p in face.polygon]
            ys = [p[1] for p in face.polygon]
            assert min(xs) < x < max(xs)
            assert min(ys) < y < max(ys)

    def test_shortest_path_adjacent(self):
        graph = grid_graph()
        faces = trace_faces(graph)
        dual = build_dual(graph, faces)
        a, b = faces.interior_faces[0].id, faces.interior_faces[1].id
        result = dual.shortest_path(a, b, forbidden={dual.outer_node})
        assert result is not None
        nodes, crossings = result
        assert nodes[0] == a and nodes[-1] == b
        assert len(crossings) == len(nodes) - 1

    def test_shortest_path_respects_forbidden(self):
        graph = grid_graph()
        dual = build_dual(graph)
        interior = dual.interior_nodes
        result = dual.shortest_path(
            interior[0], interior[-1], forbidden={dual.outer_node}
        )
        assert result is not None
        assert dual.outer_node not in result[0]

    def test_forbidden_endpoint_raises(self):
        dual = build_dual(grid_graph())
        interior = dual.interior_nodes
        with pytest.raises(GraphStructureError):
            dual.shortest_path(
                interior[0], interior[1], forbidden={interior[0]}
            )

    def test_same_source_target(self):
        dual = build_dual(grid_graph())
        node = dual.interior_nodes[0]
        assert dual.shortest_path(node, node) == ([node], [])

    def test_crossing_edge_consistency(self):
        graph = grid_graph()
        dual = build_dual(graph)
        a = dual.interior_nodes[0]
        for b in dual.neighbors(a):
            edge = dual.crossing_edge(a, b)
            sides = dual.faces_of_primal_edge(*edge)
            assert {a, b} <= set(sides) or a in sides


class TestPlanarize:
    def test_crossing_inserted(self):
        positions = {0: (0, 0), 1: (2, 2), 2: (0, 2), 3: (2, 0)}
        graph = planarize(positions, [(0, 1), (2, 3)])
        # One intersection node added; each edge split in two.
        assert graph.node_count == 5
        assert graph.edge_count == 4

    def test_no_crossings_untouched(self):
        positions = {0: (0, 0), 1: (1, 0), 2: (1, 1)}
        graph = planarize(positions, [(0, 1), (1, 2)])
        assert graph.node_count == 3
        assert graph.edge_count == 2

    def test_shared_endpoint_not_split(self):
        positions = {0: (0, 0), 1: (1, 1), 2: (2, 0)}
        graph = planarize(positions, [(0, 1), (1, 2)])
        assert graph.node_count == 3

    def test_duplicate_edges_collapsed(self):
        positions = {0: (0, 0), 1: (1, 0)}
        graph = planarize(positions, [(0, 1), (1, 0)])
        assert graph.edge_count == 1

    def test_empty_edges(self):
        graph = planarize({0: (0, 0)}, [])
        assert graph.node_count == 1
        assert graph.edge_count == 0

    def test_result_is_traceable(self):
        # After planarization the straight-line drawing has no
        # crossings, so face tracing must close consistently.
        rng = np.random.default_rng(5)
        positions = {i: tuple(rng.uniform(0, 10, 2)) for i in range(12)}
        edges = [(i, (i + 3) % 12) for i in range(12)]
        graph = planarize(positions, edges)
        largest_component(graph)
        prune_degree_one(graph)
        if graph.edge_count >= 3:
            faces = trace_faces(graph)
            assert faces.outer_face_id is not None


class TestPruning:
    def test_prune_degree_one_removes_chains(self):
        graph = grid_graph()
        graph.add_node("stub1", (10, 10))
        graph.add_node("stub2", (11, 11))
        graph.add_edge((3, 3), "stub1")
        graph.add_edge("stub1", "stub2")
        prune_degree_one(graph)
        assert "stub1" not in graph
        assert "stub2" not in graph

    def test_largest_component(self):
        graph = grid_graph()
        graph.add_node("iso1", (20, 20))
        graph.add_node("iso2", (21, 20))
        graph.add_edge("iso1", "iso2")
        largest_component(graph)
        assert "iso1" not in graph
        assert graph.node_count == 16
