"""Unit tests for the constant-size regression models (§4.8)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import (
    LinearModel,
    PiecewiseLinearModel,
    PolynomialModel,
    StepHistogramModel,
    default_model_factories,
)

ALL_MODELS = [
    LinearModel,
    lambda: PolynomialModel(degree=3),
    lambda: PiecewiseLinearModel(segments=8),
    lambda: StepHistogramModel(bins=16),
]


def uniform_stream(n=500, span=1000.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.sort(rng.uniform(0, span, n))


@pytest.mark.parametrize("factory", ALL_MODELS)
class TestModelContract:
    def test_predict_before_fit_raises(self, factory):
        with pytest.raises(ModelError):
            factory().predict(1.0)

    def test_empty_fit_predicts_zero(self, factory):
        model = factory().fit([])
        assert model.predict(123.0) == 0.0

    def test_single_event(self, factory):
        model = factory().fit([5.0])
        assert model.predict(4.0) == 0.0
        assert model.predict(5.0) == 1.0
        assert model.predict(6.0) == 1.0

    def test_clamped_to_bounds(self, factory):
        times = uniform_stream()
        model = factory().fit(times)
        assert model.predict(-100.0) == 0.0
        assert model.predict(times[-1] + 1) == len(times)
        for t in np.linspace(times[0], times[-1], 20):
            assert 0.0 <= model.predict(t) <= len(times)

    def test_reasonable_accuracy_on_uniform_stream(self, factory):
        times = uniform_stream()
        model = factory().fit(times)
        errors = []
        for t in np.linspace(times[0], times[-1], 50):
            exact = np.searchsorted(times, t, side="right")
            errors.append(abs(model.predict(t) - exact))
        # Uniform CDFs are easy; every model should be within 10%.
        assert np.mean(errors) < 0.1 * len(times)

    def test_predict_range(self, factory):
        times = uniform_stream()
        model = factory().fit(times)
        full = model.predict_range(times[0] - 1, times[-1] + 1)
        assert full == pytest.approx(len(times))

    def test_inverted_range_rejected(self, factory):
        model = factory().fit([1.0, 2.0])
        with pytest.raises(ModelError):
            model.predict_range(5.0, 1.0)

    def test_unsorted_input_handled(self, factory):
        model = factory().fit([3.0, 1.0, 2.0])
        assert model.predict(1.5) >= 0.0
        assert model.predict(3.0) == 3.0

    def test_storage_constant_in_stream_length(self, factory):
        small = factory().fit(uniform_stream(50))
        large = factory().fit(uniform_stream(5000))
        assert small.storage_bytes == large.storage_bytes

    def test_parameter_count_positive(self, factory):
        model = factory().fit(uniform_stream(100))
        assert model.parameter_count >= 1
        assert model.storage_bytes > 0


class TestLinearModel:
    def test_exact_on_linear_cdf(self):
        times = np.arange(1, 101, dtype=float)
        model = LinearModel().fit(times)
        assert model.predict(50.0) == pytest.approx(50.0, abs=1.0)

    def test_duplicate_timestamps(self):
        model = LinearModel().fit([5.0] * 10)
        assert model.predict(5.0) == 10.0
        assert model.predict(4.9) == 0.0


class TestPolynomialModel:
    def test_invalid_degree(self):
        with pytest.raises(ModelError):
            PolynomialModel(degree=0)

    def test_captures_curvature_better_than_linear(self):
        # Quadratic arrival process.
        times = np.sort(np.sqrt(np.linspace(0.01, 1, 400))) * 1000
        linear_err, poly_err = [], []
        linear = LinearModel().fit(times)
        poly = PolynomialModel(degree=3).fit(times)
        for t in np.linspace(times[0], times[-1], 50):
            exact = np.searchsorted(times, t, side="right")
            linear_err.append(abs(linear.predict(t) - exact))
            poly_err.append(abs(poly.predict(t) - exact))
        assert np.mean(poly_err) < np.mean(linear_err)


class TestPiecewiseLinearModel:
    def test_invalid_segments(self):
        with pytest.raises(ModelError):
            PiecewiseLinearModel(segments=0)

    def test_monotone_predictions(self):
        rng = np.random.default_rng(1)
        times = np.sort(rng.exponential(10, size=300).cumsum())
        model = PiecewiseLinearModel(segments=6).fit(times)
        probes = np.linspace(times[0], times[-1], 100)
        values = [model.predict(t) for t in probes]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_more_segments_more_accurate(self):
        rng = np.random.default_rng(2)
        # Bursty stream: hard for coarse models.
        bursts = [rng.uniform(i * 100, i * 100 + 5, 50) for i in range(6)]
        times = np.sort(np.concatenate(bursts))
        errors = {}
        for segments in (2, 16):
            model = PiecewiseLinearModel(segments=segments).fit(times)
            errors[segments] = np.mean(
                [
                    abs(
                        model.predict(t)
                        - np.searchsorted(times, t, side="right")
                    )
                    for t in np.linspace(times[0], times[-1], 200)
                ]
            )
        assert errors[16] < errors[2]


class TestStepHistogramModel:
    def test_invalid_bins(self):
        with pytest.raises(ModelError):
            StepHistogramModel(bins=0)

    def test_counts_monotone(self):
        times = uniform_stream(200)
        model = StepHistogramModel(bins=8).fit(times)
        values = [model.predict(t) for t in np.linspace(0, 1000, 50)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestFactories:
    def test_default_factories_complete(self):
        factories = default_model_factories()
        assert set(factories) == {
            "linear",
            "polynomial",
            "piecewise",
            "histogram",
            "periodic",
        }
        for factory in factories.values():
            model = factory().fit([1.0, 2.0, 3.0])
            assert model.predict(2.0) >= 1.0
