"""Property-based tests (hypothesis) for the core invariants.

The deepest invariant of the paper — Theorem 4.1/4.2: boundary
integration of crossing counts equals exact occupancy for arbitrary
movement histories — is checked here against randomly generated
movement sequences and randomly sampled wall configurations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.forms import SnapshotForm, TrackingForm
from repro.geometry import BBox, convex_hull, point_in_polygon, signed_area
from repro.models import (
    LinearModel,
    PiecewiseLinearModel,
    StepHistogramModel,
)
from repro.planar import Chain

# ----------------------------------------------------------------------
# A tiny world for movement simulations: nodes 0..8 in a 3x3 grid plus
# an EXT node adjacent to the rim.
# ----------------------------------------------------------------------
GRID_NODES = list(range(9))
EXT = "ext"


def grid_neighbors(node):
    if node == EXT:
        return [0, 1, 2, 3, 5, 6, 7, 8]  # every rim node
    row, col = divmod(node, 3)
    result = []
    for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        r, c = row + dr, col + dc
        if 0 <= r < 3 and 0 <= c < 3:
            result.append(r * 3 + c)
    if node != 4:  # rim nodes touch EXT
        result.append(EXT)
    return result


@st.composite
def movement_history(draw):
    """Random walks of several objects over the grid world.

    Every object starts at EXT; each step moves to a neighbour.
    Returns the list of per-object position sequences.
    """
    n_objects = draw(st.integers(1, 4))
    histories = []
    for _ in range(n_objects):
        position = EXT
        sequence = [position]
        for _ in range(draw(st.integers(0, 12))):
            position = draw(st.sampled_from(grid_neighbors(position)))
            sequence.append(position)
        histories.append(sequence)
    return histories


regions = st.sets(st.sampled_from(GRID_NODES), min_size=1, max_size=8)


def region_boundary_edges(region):
    """Inward directed sensing edges of a grid-world region."""
    edges = []
    for v in region:
        for u in grid_neighbors(v):
            if u == EXT or u not in region:
                edges.append((u, v))
    return edges


class TestTheorem41Property:
    @settings(max_examples=150, deadline=None)
    @given(histories=movement_history(), region=regions)
    def test_snapshot_integration_equals_occupancy(self, histories, region):
        form = SnapshotForm()
        for sequence in histories:
            for a, b in zip(sequence, sequence[1:]):
                form.record(a, b)
        boundary = region_boundary_edges(region)
        occupancy = sum(1 for s in histories if s[-1] in region)
        assert form.integrate_edges(boundary) == occupancy

    @settings(max_examples=100, deadline=None)
    @given(histories=movement_history(), region=regions,
           probe=st.integers(0, 30))
    def test_tracking_integration_equals_occupancy_at_time(
        self, histories, region, probe
    ):
        """Theorem 4.2 with step-indexed timestamps."""
        form = TrackingForm()
        for sequence in histories:
            for step, (a, b) in enumerate(zip(sequence, sequence[1:])):
                form.record(a, b, float(step))
        boundary = region_boundary_edges(region)

        def position_at(sequence, t):
            # After step k the object sits at sequence[k + 1].
            index = min(int(t) + 1, len(sequence) - 1)
            return sequence[index]

        occupancy = sum(
            1 for s in histories if position_at(s, probe) in region
        )
        assert form.integrate_until(boundary, float(probe)) == occupancy

    @settings(max_examples=100, deadline=None)
    @given(histories=movement_history(), region=regions,
           t1=st.integers(0, 15), t2=st.integers(0, 15))
    def test_transient_is_difference_of_statics(
        self, histories, region, t1, t2
    ):
        """Theorem 4.3 == N(t2) - N(t1) identically."""
        t1, t2 = sorted((t1, t2))
        form = TrackingForm()
        for sequence in histories:
            for step, (a, b) in enumerate(zip(sequence, sequence[1:])):
                form.record(a, b, float(step))
        boundary = region_boundary_edges(region)
        assert form.integrate_between(
            boundary, float(t1), float(t2)
        ) == form.integrate_until(boundary, float(t2)) - form.integrate_until(
            boundary, float(t1)
        )


class TestChainProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=30,
        )
    )
    def test_antisymmetry_invariant(self, edges):
        chain = Chain()
        for edge in edges:
            chain.add(edge)
        for u in range(6):
            for v in range(6):
                if u != v:
                    assert chain.coefficient((u, v)) == -chain.coefficient(
                        (v, u)
                    )

    @settings(max_examples=200, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=20,
        )
    )
    def test_chain_plus_negation_is_zero(self, edges):
        chain = Chain.from_edges(edges)
        total = chain + (-chain)
        assert len(total) == 0


class TestGeometryProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=3,
            max_size=40,
        )
    )
    def test_hull_contains_all_points(self, points):
        hull = convex_hull(points)
        if len(hull) < 3 or abs(signed_area(hull)) < 1e-9:
            return  # collinear or sub-tolerance geometry
        for point in points:
            assert point_in_polygon(point, hull, eps=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.floats(-50, 50, allow_nan=False),
                st.floats(-50, 50, allow_nan=False),
            ),
            min_size=3,
            max_size=12,
        )
    )
    def test_signed_area_antisymmetric(self, points):
        forward = signed_area(points)
        backward = signed_area(list(reversed(points)))
        scale = max(abs(forward), abs(backward), 1.0)
        assert abs(forward + backward) <= 1e-9 * scale

    @settings(max_examples=100, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_bbox_contains_inputs(self, points):
        box = BBox.from_points(points)
        assert all(box.contains_point(p, eps=1e-9) for p in points)


timestamp_lists = st.lists(
    st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


class TestModelProperties:
    @settings(max_examples=60, deadline=None)
    @given(times=timestamp_lists, probe=st.floats(-1e6, 2e6, allow_nan=False))
    def test_predictions_bounded(self, times, probe):
        for factory in (LinearModel, PiecewiseLinearModel, StepHistogramModel):
            model = factory().fit(times)
            value = model.predict(probe)
            assert 0.0 <= value <= len(times)

    @settings(max_examples=60, deadline=None)
    @given(times=timestamp_lists)
    def test_range_additivity(self, times):
        model = PiecewiseLinearModel().fit(times)
        lo, hi = min(times), max(times)
        mid = (lo + hi) / 2
        total = model.predict_range(lo - 1, hi + 1)
        split = model.predict_range(lo - 1, mid) + model.predict_range(
            mid, hi + 1
        )
        assert abs(total - split) < 1e-6

    @settings(max_examples=60, deadline=None)
    @given(times=timestamp_lists)
    def test_piecewise_monotone(self, times):
        model = PiecewiseLinearModel(segments=5).fit(times)
        lo, hi = min(times), max(times)
        probes = np.linspace(lo, hi, 20)
        values = [model.predict(float(t)) for t in probes]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


class TestDoubleCountingProperty:
    @settings(max_examples=100, deadline=None)
    @given(rounds=st.integers(1, 20))
    def test_repeated_reentry_counts_once(self, rounds):
        """§3.1.2: any number of exit/re-enter cycles nets one object."""
        form = SnapshotForm()
        form.record("out", "in")  # initial entry
        for _ in range(rounds):
            form.record("in", "out")
            form.record("out", "in")
        assert form.integrate_edges([("out", "in")]) == 1
