"""Unit tests for the daily-periodic count model."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import LinearModel, PeriodicModel

DAY = 86_400.0


def rush_hour_stream(days=4, per_day=200, seed=0) -> np.ndarray:
    """Multi-day stream with morning/evening peaks."""
    rng = np.random.default_rng(seed)
    times = []
    for day in range(days):
        peaks = rng.normal(
            loc=np.where(rng.random(per_day) < 0.5, 8.0, 18.0) * 3600,
            scale=3600.0,
        )
        times.append(day * DAY + np.clip(peaks, 0, DAY - 1))
    return np.sort(np.concatenate(times))


class TestValidation:
    def test_invalid_period(self):
        with pytest.raises(ModelError):
            PeriodicModel(period=0)

    def test_invalid_bins(self):
        with pytest.raises(ModelError):
            PeriodicModel(profile_bins=0)


class TestFitting:
    def test_beats_linear_on_rush_hours(self):
        times = rush_hour_stream()
        linear = LinearModel().fit(times)
        periodic = PeriodicModel(profile_bins=24).fit(times)
        probes = np.linspace(times[0], times[-1], 200)
        linear_err, periodic_err = [], []
        for t in probes:
            exact = np.searchsorted(times, t, side="right")
            linear_err.append(abs(linear.predict(t) - exact))
            periodic_err.append(abs(periodic.predict(t) - exact))
        assert np.mean(periodic_err) < 0.6 * np.mean(linear_err)

    def test_bounded_and_clamped(self):
        times = rush_hour_stream(days=2)
        model = PeriodicModel().fit(times)
        assert model.predict(-100.0) == 0.0
        assert model.predict(times[-1] + 1) == len(times)
        for t in np.linspace(times[0], times[-1], 50):
            assert 0 <= model.predict(t) <= len(times)

    def test_single_event(self):
        model = PeriodicModel().fit([5.0])
        assert model.predict(5.0) == 1.0
        assert model.predict(4.0) == 0.0

    def test_empty(self):
        model = PeriodicModel().fit([])
        assert model.predict(100.0) == 0.0

    def test_storage_constant(self):
        small = PeriodicModel(profile_bins=24).fit(rush_hour_stream(days=1))
        large = PeriodicModel(profile_bins=24).fit(rush_hour_stream(days=8))
        assert small.storage_bytes == large.storage_bytes
        assert small.parameter_count == 26

    def test_sparse_phases_filled_circularly(self):
        # Events only in one hour of the day: other phase bins must
        # still produce finite predictions.
        rng = np.random.default_rng(1)
        times = np.sort(
            np.concatenate(
                [day * DAY + rng.uniform(3600, 7200, 30) for day in range(3)]
            )
        )
        model = PeriodicModel(profile_bins=24).fit(times)
        for t in np.linspace(times[0], times[-1], 40):
            assert np.isfinite(model.predict(t))
