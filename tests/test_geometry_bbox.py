"""Unit tests for repro.geometry.bbox."""

import pytest

from repro.errors import GeometryError
from repro.geometry import BBox


class TestConstruction:
    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            BBox(2, 0, 1, 1)

    def test_from_points(self):
        box = BBox.from_points([(1, 5), (3, 2), (0, 4)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 2, 3, 5)

    def test_from_points_empty(self):
        with pytest.raises(GeometryError):
            BBox.from_points([])

    def test_from_center(self):
        box = BBox.from_center((5, 5), 4, 2)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (3, 4, 7, 6)

    def test_from_center_negative_rejected(self):
        with pytest.raises(GeometryError):
            BBox.from_center((0, 0), -1, 1)


class TestProperties:
    def test_dimensions(self):
        box = BBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area == 12
        assert box.center == (2.0, 1.5)

    def test_iter_unpacking(self):
        min_x, min_y, max_x, max_y = BBox(1, 2, 3, 4)
        assert (min_x, min_y, max_x, max_y) == (1, 2, 3, 4)

    def test_corners_ccw(self):
        corners = BBox(0, 0, 1, 1).corners()
        assert corners == ((0, 0), (1, 0), (1, 1), (0, 1))


class TestContainment:
    def test_contains_interior_point(self):
        assert BBox(0, 0, 2, 2).contains_point((1, 1))

    def test_contains_boundary_point(self):
        assert BBox(0, 0, 2, 2).contains_point((0, 2))

    def test_excludes_outside_point(self):
        assert not BBox(0, 0, 2, 2).contains_point((3, 1))

    def test_contains_point_with_eps(self):
        assert BBox(0, 0, 2, 2).contains_point((2.0005, 1), eps=1e-3)

    def test_contains_bbox(self):
        assert BBox(0, 0, 4, 4).contains_bbox(BBox(1, 1, 2, 2))
        assert not BBox(0, 0, 4, 4).contains_bbox(BBox(3, 3, 5, 5))


class TestIntersection:
    def test_overlapping(self):
        assert BBox(0, 0, 2, 2).intersects(BBox(1, 1, 3, 3))

    def test_touching_edge_counts(self):
        assert BBox(0, 0, 1, 1).intersects(BBox(1, 0, 2, 1))

    def test_disjoint(self):
        assert not BBox(0, 0, 1, 1).intersects(BBox(2, 2, 3, 3))

    def test_intersection_box(self):
        overlap = BBox(0, 0, 2, 2).intersection(BBox(1, 1, 3, 3))
        assert overlap == BBox(1, 1, 2, 2)

    def test_intersection_none(self):
        assert BBox(0, 0, 1, 1).intersection(BBox(5, 5, 6, 6)) is None

    def test_expanded(self):
        assert BBox(1, 1, 2, 2).expanded(1) == BBox(0, 0, 3, 3)
