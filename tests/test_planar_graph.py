"""Unit tests for repro.planar.graph."""

import math

import pytest

from repro.errors import GraphStructureError
from repro.planar import PlanarGraph, canonical_edge


@pytest.fixture()
def square() -> PlanarGraph:
    graph = PlanarGraph()
    for node, pos in {
        "a": (0, 0),
        "b": (1, 0),
        "c": (1, 1),
        "d": (0, 1),
    }.items():
        graph.add_node(node, pos)
    for u, v in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]:
        graph.add_edge(u, v)
    return graph


class TestConstruction:
    def test_counts(self, square):
        assert square.node_count == 4
        assert square.edge_count == 4

    def test_contains(self, square):
        assert "a" in square
        assert "zz" not in square

    def test_self_loop_rejected(self, square):
        with pytest.raises(GraphStructureError):
            square.add_edge("a", "a")

    def test_edge_to_unknown_node_rejected(self, square):
        with pytest.raises(GraphStructureError):
            square.add_edge("a", "nope")

    def test_duplicate_edge_idempotent(self, square):
        square.add_edge("a", "b")
        assert square.edge_count == 4

    def test_from_edges(self):
        graph = PlanarGraph.from_edges(
            {1: (0, 0), 2: (1, 0)}, [(1, 2)]
        )
        assert graph.has_edge(1, 2)

    def test_copy_is_independent(self, square):
        clone = square.copy()
        clone.remove_node("a")
        assert "a" in square
        assert "a" not in clone


class TestMutation:
    def test_remove_edge(self, square):
        square.remove_edge("a", "b")
        assert not square.has_edge("a", "b")
        assert square.edge_count == 3

    def test_remove_node_cleans_adjacency(self, square):
        square.remove_node("a")
        assert square.node_count == 3
        assert not square.has_edge("b", "a")
        assert square.degree("b") == 1

    def test_remove_missing_node_is_noop(self, square):
        square.remove_node("zz")
        assert square.node_count == 4

    def test_version_bumps_on_mutation(self, square):
        before = square.version
        square.add_node("e", (2, 2))
        assert square.version > before


class TestGeometry:
    def test_position_lookup(self, square):
        assert square.position("c") == (1.0, 1.0)

    def test_position_unknown_raises(self, square):
        with pytest.raises(GraphStructureError):
            square.position("zz")

    def test_edge_length(self, square):
        assert square.edge_length("a", "b") == pytest.approx(1.0)

    def test_bounds(self, square):
        box = square.bounds()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 1, 1)

    def test_bounds_empty_raises(self):
        with pytest.raises(GraphStructureError):
            PlanarGraph().bounds()

    def test_total_edge_length(self, square):
        assert square.total_edge_length() == pytest.approx(4.0)


class TestRotationSystem:
    def test_rotation_ccw_order(self):
        graph = PlanarGraph()
        graph.add_node("o", (0, 0))
        graph.add_node("e", (1, 0))
        graph.add_node("n", (0, 1))
        graph.add_node("w", (-1, 0))
        graph.add_node("s", (0, -1))
        for nb in "enws":
            graph.add_edge("o", nb)
        rotation = graph.rotation("o")
        # Sorted by atan2: south (-pi/2), east (0), north (pi/2), west (pi).
        assert rotation == ["s", "e", "n", "w"]

    def test_rotation_cache_invalidation(self, square):
        rotation_before = square.rotation("a")
        square.add_node("e", (0.5, -1))
        square.add_edge("a", "e")
        assert square.rotation("a") != rotation_before

    def test_next_face_edge_cycles_triangle(self):
        graph = PlanarGraph.from_edges(
            {0: (0, 0), 1: (1, 0), 2: (0.5, 1)},
            [(0, 1), (1, 2), (2, 0)],
        )
        edge = (0, 1)
        walk = [edge]
        for _ in range(2):
            edge = graph.next_face_edge(*edge)
            walk.append(edge)
        assert graph.next_face_edge(*edge) == (0, 1)
        assert walk == [(0, 1), (1, 2), (2, 0)]


class TestAlgorithms:
    def test_connected_components(self, square):
        square.add_node("island", (5, 5))
        components = square.connected_components()
        assert len(components) == 2

    def test_is_connected(self, square):
        assert square.is_connected()

    def test_shortest_path_direct(self, square):
        assert square.shortest_path("a", "b") == ["a", "b"]

    def test_shortest_path_around(self, square):
        path = square.shortest_path("a", "c")
        assert path is not None
        assert len(path) == 3

    def test_shortest_path_unreachable(self, square):
        square.add_node("island", (5, 5))
        assert square.shortest_path("a", "island") is None

    def test_shortest_path_same_node(self, square):
        assert square.shortest_path("a", "a") == ["a"]

    def test_dijkstra_tree_matches_shortest_path(self, square):
        dist, pred = square.dijkstra_tree("a")
        path = square.path_from_tree("a", "c", pred)
        assert path is not None
        assert dist["c"] == pytest.approx(2.0)
        assert len(path) == 3

    def test_path_from_tree_unreachable(self, square):
        square.add_node("island", (5, 5))
        _, pred = square.dijkstra_tree("a")
        assert square.path_from_tree("a", "island", pred) is None

    def test_to_networkx(self, square):
        nx_graph = square.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        assert nx_graph.nodes["a"]["pos"] == (0.0, 0.0)


class TestCanonicalEdge:
    def test_symmetric(self):
        assert canonical_edge(2, 1) == canonical_edge(1, 2)

    def test_mixed_types_total_order(self):
        edge1 = canonical_edge("__ext__", (1, 2))
        edge2 = canonical_edge((1, 2), "__ext__")
        assert edge1 == edge2
