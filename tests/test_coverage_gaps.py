"""Tests for remaining behavioural corners across modules.

Failure injection, protocol conformance, alternative city kinds in the
harness, and accounting edge cases.
"""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.evaluation import (
    PipelineConfig,
    get_pipeline,
    print_series,
)
from repro.forms import EdgeCountStore, TrackingForm
from repro.geometry import BBox
from repro.models import LinearModel, ModeledCountStore
from repro.query import QueryEngine, RangeQuery


class TestProtocolConformance:
    def test_tracking_form_is_edge_count_store(self):
        assert isinstance(TrackingForm(), EdgeCountStore)

    def test_modeled_store_is_edge_count_store(self):
        form = TrackingForm()
        form.record("a", "b", 1.0)
        store = ModeledCountStore.fit(form, LinearModel)
        assert isinstance(store, EdgeCountStore)

    def test_buffered_store_is_edge_count_store(self):
        from repro.models import BufferedEdgeStore

        assert isinstance(BufferedEdgeStore(LinearModel), EdgeCountStore)

    def test_noisy_store_is_edge_count_store(self):
        from repro.forms import LaplaceNoisyStore

        assert isinstance(
            LaplaceNoisyStore(TrackingForm(), epsilon=1.0), EdgeCountStore
        )


class TestFailureInjection:
    def test_form_accepts_unknown_edges(self):
        """Forms are schema-free: a crossing on a never-seen edge is
        recorded rather than rejected (sensors don't know the graph)."""
        form = TrackingForm()
        form.record("mystery-1", "mystery-2", 5.0)
        assert form.count_entering(("mystery-1", "mystery-2"), 10.0) == 1

    def test_build_form_empty_events(self, sampled_net):
        form = sampled_net.build_form([])
        assert form.total_events == 0

    def test_engine_on_empty_form(self, sampled_net, workload):
        engine = QueryEngine(sampled_net, TrackingForm())
        result = engine.execute(
            RangeQuery(BBox(1.5, 1.5, 8.5, 8.5), 0, workload.horizon)
        )
        if not result.missed:
            assert result.value == 0

    def test_flood_access_on_sampled_network(
        self, sampled_net, sampled_form, workload
    ):
        engine = QueryEngine(sampled_net, sampled_form, access_mode="flood")
        result = engine.execute(
            RangeQuery(BBox(1.5, 1.5, 8.5, 8.5), 0, workload.horizon / 2)
        )
        if not result.missed:
            perimeter = QueryEngine(sampled_net, sampled_form).execute(
                RangeQuery(BBox(1.5, 1.5, 8.5, 8.5), 0, workload.horizon / 2)
            )
            assert result.nodes_accessed >= perimeter.nodes_accessed

    def test_region_junctions_of_missed_result(
        self, sampled_net, sampled_form
    ):
        engine = QueryEngine(sampled_net, sampled_form)
        result = engine.execute(RangeQuery(BBox(0.0, 0.0, 0.05, 0.05), 0, 1))
        assert result.missed
        assert engine.region_junctions(result) == set()

    def test_resolve_junctions(self, sampled_net, sampled_form):
        engine = QueryEngine(sampled_net, sampled_form)
        box = BBox(2, 2, 8, 8)
        assert engine.resolve_junctions(
            RangeQuery(box, 0, 1)
        ) == engine.domain.junctions_in_bbox(box)


class TestAlternativeCities:
    @pytest.mark.parametrize("city", ["grid", "radial"])
    def test_pipeline_builds_on_other_city_kinds(self, city):
        config = PipelineConfig(
            city=city, blocks=60, n_trips=300, history_per_fraction=3
        )
        pipeline = get_pipeline(config)
        assert pipeline.domain.block_count > 10
        queries = pipeline.standard_queries(0.1728, n=3)
        network = pipeline.network("uniform", 10, seed=0)
        engine = pipeline.engine(network)
        for query in queries:
            engine.execute(query)  # must not raise

    def test_unknown_city_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PipelineConfig(city="atlantis")


class TestSubmodularDeterminism:
    def test_plan_deterministic(self, grid_domain):
        from repro.selection import SubmodularSelector

        history = [
            grid_domain.junctions_in_bbox(BBox(0, 0, 5, 5)),
            grid_domain.junctions_in_bbox(BBox(4, 4, 10, 10)),
        ]
        first = SubmodularSelector(grid_domain, history).plan(200, "edges")
        second = SubmodularSelector(grid_domain, history).plan(200, "edges")
        assert first.walls == second.walls
        assert first.sensors == second.sensors

    def test_greedy_prefers_shared_atoms(self, grid_domain):
        """Fig. 5's insight: an overlap atom that serves both queries
        has the best utility per unit cost and is picked first (when
        the overlap is wide enough that its boundary is not the
        dominant cost)."""
        from repro.selection import SubmodularSelector

        r1 = grid_domain.junctions_in_bbox(BBox(0, 0, 7.2, 10))
        r2 = grid_domain.junctions_in_bbox(BBox(2.8, 0, 10, 10))
        selector = SubmodularSelector(grid_domain, [r1, r2])
        plan = selector.plan(10_000, budget_unit="edges")
        signatures = [tuple(sorted(a.queries)) for a in plan.atoms]
        assert signatures[0] == (0, 1)
        # ... and with enough budget both full queries are answerable.
        assert set(signatures) == {(0,), (1,), (0, 1)}


class TestTablesAndSeries:
    def test_print_series(self, capsys):
        print_series("title", [1, 2], ["a", "b"])
        out = capsys.readouterr().out
        assert "title" in out
        assert "1: a" in out

    def test_summary_str_formats(self):
        from repro.evaluation import Summary

        summary = Summary.of([0.1, 0.2, 0.3])
        text = str(summary)
        assert "0.2" in text
        assert "[" in text


class TestTripEventConservation:
    def test_every_trip_nets_zero_after_exit(
        self, organic_domain, workload
    ):
        """After an object leaves, every region's contribution is 0:
        total entries equal total exits on each trip's event stream."""
        from collections import Counter

        from repro.trajectories import trip_events

        for trip in workload.trips[:20]:
            balance = Counter()
            for event in trip_events(organic_domain, trip):
                balance[event.head] += 1
                balance[event.tail] -= 1
            # Every junction nets zero; EXT nets zero too (out and back).
            assert all(v == 0 for v in balance.values())
