"""Unit tests for tracking forms (Eq. 8, Theorems 4.2 and 4.3)."""

import pytest

from repro.errors import QueryError
from repro.forms import TrackingForm, static_count, transient_count


@pytest.fixture()
def figure_10_form() -> TrackingForm:
    """The exact scenario of Fig. 10.

    Edges a, b, c border face sigma.  A blue trajectory enters through
    b at t0 and exits through c at t3; green enters through b at t2;
    red enters through a at t1.  We model the edges as directed
    crossings into sigma: ('a_out', 'sigma'), ('b_out', 'sigma'),
    ('c_out', 'sigma').
    """
    form = TrackingForm()
    form.record("b_out", "sigma", 0.0)   # blue enters through b at t0
    form.record("a_out", "sigma", 1.0)   # red enters through a at t1
    form.record("b_out", "sigma", 2.0)   # green enters through b at t2
    form.record("sigma", "c_out", 3.0)   # blue exits through c at t3
    return form


BOUNDARY = [("a_out", "sigma"), ("b_out", "sigma"), ("c_out", "sigma")]


class TestCountFunction:
    def test_count_entering_until(self, figure_10_form):
        form = figure_10_form
        assert form.count_entering(("b_out", "sigma"), 2.0) == 2
        assert form.count_entering(("b_out", "sigma"), 1.9) == 1
        assert form.count_entering(("b_out", "sigma"), -1.0) == 0

    def test_count_right_continuous(self, figure_10_form):
        # The event at exactly t is included (counts are right-continuous).
        assert figure_10_form.count_entering(("a_out", "sigma"), 1.0) == 1

    def test_count_leaving(self, figure_10_form):
        assert figure_10_form.count_leaving(("c_out", "sigma"), 3.0) == 1

    def test_net_until(self, figure_10_form):
        assert figure_10_form.net_until(("c_out", "sigma"), 3.0) == -1

    def test_net_between_inverted_raises(self, figure_10_form):
        with pytest.raises(QueryError):
            figure_10_form.net_between(("a_out", "sigma"), 5.0, 1.0)


class TestTheorem42:
    """Static count: paper's worked example gives 2 objects at t3."""

    def test_count_at_t3(self, figure_10_form):
        assert figure_10_form.integrate_until(BOUNDARY, 3.0) == 2

    def test_count_before_any_event(self, figure_10_form):
        assert figure_10_form.integrate_until(BOUNDARY, -0.5) == 0

    def test_count_mid_sequence(self, figure_10_form):
        # After blue and red entered (t1) but before green: 2 inside.
        assert figure_10_form.integrate_until(BOUNDARY, 1.5) == 2

    def test_protocol_helper(self, figure_10_form):
        assert static_count(figure_10_form, BOUNDARY, 3.0) == 2


class TestOutOfOrderIngestion:
    """The dirty-flag path of ``_EventSeries`` (lazy re-sort)."""

    def test_out_of_order_appends_set_dirty_flag(self):
        from repro.forms.tracking import _EventSeries

        series = _EventSeries()
        series.append(5.0)
        assert not series._dirty
        series.append(3.0)  # regression in time order
        assert series._dirty

    def test_out_of_order_counts_match_sorted(self):
        from repro.forms.tracking import _EventSeries

        times = [5.0, 3.0, 9.0, 3.0, 1.0, 7.0]
        series = _EventSeries()
        for t in times:
            series.append(t)
        expected = sorted(times)
        assert series.timestamps() == expected
        assert not series._dirty  # read triggered the one-shot sort
        for probe in (0.0, 1.0, 3.0, 4.0, 9.0, 10.0):
            assert series.count_until(probe) == sum(
                1 for t in expected if t <= probe
            )
        assert series.count_between(1.0, 7.0) == 4

    def test_form_level_shuffled_ingestion(self):
        ordered = TrackingForm()
        shuffled = TrackingForm()
        events = [("a", "b", float(t)) for t in (1, 4, 2, 9, 9, 0)]
        for u, v, t in sorted(events, key=lambda e: e[2]):
            ordered.record(u, v, t)
        for u, v, t in events:
            shuffled.record(u, v, t)
        for t in (0.0, 1.5, 4.0, 9.0, 12.0):
            assert ordered.count_entering(("a", "b"), t) == shuffled.count_entering(
                ("a", "b"), t
            )


class TestAggregateMemoisation:
    """``total_events``/``storage_profile`` re-scan only after ``record``."""

    def test_caches_invalidate_on_record(self):
        form = TrackingForm()
        form.record("a", "b", 1.0)
        assert form.total_events == 1
        assert form.storage_profile() == [1]
        form.record("b", "a", 2.0)
        form.record("c", "d", 3.0)
        assert form.total_events == 3
        assert form.storage_profile() == [1, 2]

    def test_repeated_reads_use_cache(self):
        form = TrackingForm()
        for i in range(10):
            form.record("a", "b", float(i))
        generation = form._generation
        first = form.total_events
        profile = form.storage_profile()
        assert form._total_events_cache == (generation, first)
        assert form._storage_profile_cache[0] == generation
        # Returned profile is a copy; mutating it must not poison the cache.
        profile.append(999)
        assert form.storage_profile() == [10]


class TestTheorem43:
    """Transient count: paper's example nets 0 over [t1, t3]."""

    def test_transient_t1_t3(self, figure_10_form):
        assert figure_10_form.integrate_between(BOUNDARY, 1.0, 3.0) == 0

    def test_transient_entry_only_window(self, figure_10_form):
        # (t_-, t2]: red + green entered, blue entered at t0 (excluded).
        assert figure_10_form.integrate_between(BOUNDARY, 0.5, 2.5) == 2

    def test_transient_negative_when_leaving(self, figure_10_form):
        assert figure_10_form.integrate_between(BOUNDARY, 2.5, 3.5) == -1

    def test_protocol_helper(self, figure_10_form):
        assert transient_count(figure_10_form, BOUNDARY, 1.0, 3.0) == 0


class TestStorageAccounting:
    def test_out_of_order_timestamps_sorted_lazily(self):
        form = TrackingForm()
        form.record("a", "b", 5.0)
        form.record("a", "b", 1.0)
        assert form.count_entering(("a", "b"), 2.0) == 1

    def test_event_count(self, figure_10_form):
        assert figure_10_form.total_events == 4
        assert figure_10_form.event_count(("b_out", "sigma")) == 2

    def test_timestamps(self, figure_10_form):
        plus, minus = figure_10_form.timestamps(("b_out", "sigma"))
        assert plus == [0.0, 2.0]
        assert minus == []

    def test_storage_profile(self, figure_10_form):
        profile = figure_10_form.storage_profile()
        assert sum(profile) == 4
        assert profile == sorted(profile)

    def test_empty_edge_queries(self):
        form = TrackingForm()
        assert form.count_entering(("x", "y"), 10.0) == 0
        assert form.net_until(("x", "y"), 10.0) == 0
        assert form.timestamps(("x", "y")) == ([], [])
        assert form.event_count(("x", "y")) == 0
