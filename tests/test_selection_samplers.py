"""Unit tests for query-oblivious sensor samplers."""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.mobility import grid_strata, voronoi_strata
from repro.selection import (
    KDTreeSelector,
    QuadTreeSelector,
    SensorCandidates,
    StratifiedSelector,
    SystematicSelector,
    UniformSelector,
)


@pytest.fixture(scope="module")
def candidates(organic_domain=None):
    # Build directly to avoid session fixture scoping issues here.
    rng = np.random.default_rng(0)
    positions = rng.uniform(0, 10, size=(200, 2))
    return SensorCandidates(
        ids=tuple(range(200)), positions=positions
    )


ALL_SELECTORS = [
    UniformSelector(),
    SystematicSelector(),
    SystematicSelector(pick="random"),
    KDTreeSelector(),
    KDTreeSelector(pick="center"),
    QuadTreeSelector(),
]


class TestCandidates:
    def test_empty_rejected(self):
        with pytest.raises(SelectionError):
            SensorCandidates(ids=(), positions=np.zeros((0, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SelectionError):
            SensorCandidates(ids=(1, 2), positions=np.zeros((3, 2)))

    def test_negative_weights_rejected(self):
        with pytest.raises(SelectionError):
            SensorCandidates(
                ids=(1, 2),
                positions=np.zeros((2, 2)),
                weights=np.array([-1.0, 1.0]),
            )

    def test_from_domain(self, organic_domain):
        built = SensorCandidates.from_domain(organic_domain)
        assert len(built) == organic_domain.block_count

    def test_probabilities_uniform(self):
        cand = SensorCandidates(ids=(1, 2), positions=np.zeros((2, 2)))
        assert np.allclose(cand.probabilities(), 0.5)

    def test_probabilities_weighted(self):
        cand = SensorCandidates(
            ids=(1, 2),
            positions=np.zeros((2, 2)),
            weights=np.array([3.0, 1.0]),
        )
        assert np.allclose(cand.probabilities(), [0.75, 0.25])


@pytest.mark.parametrize("selector", ALL_SELECTORS, ids=lambda s: f"{s.name}")
class TestSelectorContract:
    def test_exact_budget(self, candidates, selector):
        for m in (1, 7, 50, 200):
            chosen = selector.select(candidates, m, np.random.default_rng(1))
            assert len(chosen) == m

    def test_distinct_and_valid(self, candidates, selector):
        chosen = selector.select(candidates, 40, np.random.default_rng(2))
        assert len(set(chosen)) == 40
        assert set(chosen) <= set(candidates.ids)

    def test_deterministic_given_rng(self, candidates, selector):
        first = selector.select(candidates, 30, np.random.default_rng(3))
        second = selector.select(candidates, 30, np.random.default_rng(3))
        assert first == second

    def test_budget_validation(self, candidates, selector):
        with pytest.raises(SelectionError):
            selector.select(candidates, 0, np.random.default_rng(0))
        with pytest.raises(SelectionError):
            selector.select(candidates, 201, np.random.default_rng(0))


class TestSystematicCoverage:
    def test_spatial_spread_beats_uniform(self, candidates):
        """Systematic picks cover space more evenly than uniform ones."""
        rng = np.random.default_rng(4)
        uniform = UniformSelector().select(candidates, 25, rng)
        systematic = SystematicSelector().select(
            candidates, 25, np.random.default_rng(4)
        )

        def min_gap(ids):
            pts = candidates.positions[[candidates.ids.index(i) for i in ids]]
            gaps = []
            for i in range(len(pts)):
                others = np.delete(pts, i, axis=0)
                gaps.append(np.min(np.linalg.norm(others - pts[i], axis=1)))
            return np.median(gaps)

        assert min_gap(systematic) >= min_gap(uniform) * 0.9

    def test_invalid_pick_mode(self):
        with pytest.raises(SelectionError):
            SystematicSelector(pick="weird")


class TestStratified:
    def test_allocation_proportional(self):
        rng = np.random.default_rng(5)
        positions = np.vstack([
            rng.uniform(0, 5, size=(150, 2)),        # left half, dense
            rng.uniform([5, 0], [10, 10], size=(50, 2)),  # right, sparse
        ])
        cand = SensorCandidates(ids=tuple(range(200)), positions=positions)
        from repro.geometry import BBox

        strata = grid_strata(BBox(0, 0, 10, 10), rows=1, cols=2)
        chosen = StratifiedSelector(strata).select(
            cand, 40, np.random.default_rng(6)
        )
        left = sum(1 for c in chosen if positions[c][0] < 5)
        # Equal-area strata: allocation should be ~half/half even though
        # candidate density differs (that is the point of stratifying).
        assert 12 <= left <= 28

    def test_capacity_respected(self):
        positions = np.vstack([
            np.random.default_rng(0).uniform(0, 5, size=(5, 2)),
            np.random.default_rng(1).uniform([5, 0], [10, 10], size=(195, 2)),
        ])
        cand = SensorCandidates(ids=tuple(range(200)), positions=positions)
        from repro.geometry import BBox

        strata = grid_strata(BBox(0, 0, 10, 10), rows=1, cols=2)
        chosen = StratifiedSelector(strata).select(
            cand, 100, np.random.default_rng(7)
        )
        assert len(chosen) == 100


class TestHierarchical:
    def test_kdtree_adapts_to_density(self):
        rng = np.random.default_rng(8)
        dense = rng.normal(2, 0.3, size=(180, 2))
        sparse = rng.uniform(5, 10, size=(20, 2))
        positions = np.vstack([dense, sparse])
        cand = SensorCandidates(ids=tuple(range(200)), positions=positions)
        chosen = KDTreeSelector().select(cand, 40, np.random.default_rng(9))
        sparse_picked = sum(1 for c in chosen if c >= 180)
        # Median splits balance population, so the sparse region is
        # guaranteed representation (unlike an unlucky uniform draw)
        # without being over-weighted.
        assert 1 <= sparse_picked <= 15

    def test_quadtree_on_duplicate_points(self):
        positions = np.zeros((50, 2))
        cand = SensorCandidates(ids=tuple(range(50)), positions=positions)
        chosen = QuadTreeSelector().select(cand, 10, np.random.default_rng(0))
        assert len(chosen) == 10

    def test_invalid_pick(self):
        with pytest.raises(SelectionError):
            KDTreeSelector(pick="bad")
