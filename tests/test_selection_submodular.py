"""Unit tests for overlap atoms and submodular maximization."""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.geometry import BBox
from repro.selection import (
    SubmodularSelector,
    lazy_greedy_select,
    overlap_atoms,
)


# ----------------------------------------------------------------------
# Generic lazy greedy
# ----------------------------------------------------------------------
class TestLazyGreedy:
    def test_coverage_maximization(self):
        """Classic set cover: greedy picks the big set first."""
        sets = {
            "big": {1, 2, 3, 4, 5},
            "left": {1, 2, 3},
            "right": {4, 5, 6},
            "tiny": {7},
        }

        def gain(name, state):
            covered = set().union(*(sets[s] for s in state)) if state else set()
            return len(sets[name] - covered)

        chosen = lazy_greedy_select(
            list(sets),
            gain=gain,
            cost=lambda name, state: 1.0,
            budget=2,
            use_ratio=False,
        )
        assert chosen[0] == "big"
        # Second pick adds the most new elements: "right" adds 1 (6),
        # "tiny" adds 1 (7) — either is valid; "left" adds 0.
        assert chosen[1] in ("right", "tiny")

    def test_cost_benefit_ratio(self):
        """With ratio ranking, a cheap medium set beats a pricey big one."""
        gains = {"big": 10.0, "cheap": 6.0}
        costs = {"big": 10.0, "cheap": 2.0}
        chosen = lazy_greedy_select(
            ["big", "cheap"],
            gain=lambda e, s: gains[e] if e not in s else 0.0,
            cost=lambda e, s: costs[e],
            budget=10.0,
            use_ratio=True,
        )
        assert chosen[0] == "cheap"

    def test_budget_respected(self):
        chosen = lazy_greedy_select(
            ["a", "b", "c"],
            gain=lambda e, s: 1.0,
            cost=lambda e, s: 4.0,
            budget=9.0,
        )
        assert len(chosen) == 2

    def test_zero_gain_elements_skipped(self):
        chosen = lazy_greedy_select(
            ["useless", "useful"],
            gain=lambda e, s: 0.0 if e == "useless" else 1.0,
            cost=lambda e, s: 1.0,
            budget=10.0,
        )
        assert chosen == ["useful"]

    def test_invalid_budget(self):
        with pytest.raises(SelectionError):
            lazy_greedy_select([], lambda e, s: 1, lambda e, s: 1, 0)

    def test_lazy_reevaluation_correct(self):
        """Diminishing marginal gains: lazy result == eager greedy."""
        universe = list(range(30))
        rng = np.random.default_rng(0)
        sets = {
            i: set(rng.choice(30, size=rng.integers(2, 10), replace=False))
            for i in range(12)
        }

        def gain(e, state):
            covered = (
                set().union(*(sets[s] for s in state)) if state else set()
            )
            return float(len(sets[e] - covered))

        lazy = lazy_greedy_select(
            list(sets), gain, lambda e, s: 1.0, budget=5, use_ratio=False
        )

        # Eager reference implementation.
        eager, chosen = [], ()
        for _ in range(5):
            best = max(
                (e for e in sets if e not in chosen),
                key=lambda e: (gain(e, chosen), -e),
            )
            if gain(best, chosen) <= 0:
                break
            eager.append(best)
            chosen = tuple(eager)
        assert [gain(e, tuple(lazy[:i])) for i, e in enumerate(lazy)] == [
            gain(e, tuple(eager[:i])) for i, e in enumerate(eager)
        ]


# ----------------------------------------------------------------------
# Overlap atoms (Fig. 5)
# ----------------------------------------------------------------------
class TestOverlapAtoms:
    def test_disjoint_queries_one_atom_each(self, grid_domain):
        r1 = grid_domain.junctions_in_bbox(BBox(0, 0, 3.4, 3.4))
        r2 = grid_domain.junctions_in_bbox(BBox(6.6, 6.6, 10, 10))
        atoms = overlap_atoms(grid_domain, [r1, r2])
        assert len(atoms) == 2
        assert {a.queries for a in atoms} == {
            frozenset({0}),
            frozenset({1}),
        }

    def test_overlapping_queries_partition(self, grid_domain):
        """Fig. 5: two overlapping regions -> three disjoint atoms."""
        r1 = grid_domain.junctions_in_bbox(BBox(0, 0, 5.1, 10))
        r2 = grid_domain.junctions_in_bbox(BBox(3.2, 0, 10, 10))
        atoms = overlap_atoms(grid_domain, [r1, r2])
        signatures = sorted(
            tuple(sorted(a.queries)) for a in atoms
        )
        assert signatures == [(0,), (0, 1), (1,)]
        union = set()
        for atom in atoms:
            assert not (union & atom.junctions)  # disjoint
            union |= atom.junctions
        assert union == r1 | r2

    def test_atom_utility_eq6(self, grid_domain):
        r1 = grid_domain.junctions_in_bbox(BBox(0, 0, 5.1, 10))
        r2 = grid_domain.junctions_in_bbox(BBox(3.2, 0, 10, 10))
        atoms = overlap_atoms(grid_domain, [r1, r2])
        weights = [len(r1), len(r2)]
        overlap = next(a for a in atoms if a.queries == frozenset({0, 1}))
        expected = overlap.weight / len(r1) + overlap.weight / len(r2)
        assert overlap.utility(weights) == pytest.approx(expected)

    def test_atom_cost_is_boundary_edges(self, grid_domain):
        region = grid_domain.junctions_in_bbox(BBox(3, 3, 7, 7))
        atoms = overlap_atoms(grid_domain, [region])
        atom = atoms[0]
        assert atom.cost == len(grid_domain.inward_boundary_edges(region))

    def test_empty_history_rejected(self, grid_domain):
        with pytest.raises(SelectionError):
            overlap_atoms(grid_domain, [])


# ----------------------------------------------------------------------
# SubmodularSelector
# ----------------------------------------------------------------------
class TestSubmodularSelector:
    def test_plan_covers_history_with_big_budget(self, grid_domain):
        history = [
            grid_domain.junctions_in_bbox(BBox(0, 0, 4, 4)),
            grid_domain.junctions_in_bbox(BBox(5, 5, 10, 10)),
        ]
        selector = SubmodularSelector(grid_domain, history)
        plan = selector.plan(10_000, budget_unit="edges")
        covered = set()
        for atom in plan.atoms:
            covered |= atom.junctions
        assert covered == history[0] | history[1]
        assert plan.walls  # boundaries materialised

    def test_plan_respects_edge_budget(self, grid_domain):
        history = [grid_domain.junctions_in_bbox(BBox(0, 0, 4, 4))]
        selector = SubmodularSelector(grid_domain, history)
        tiny = selector.plan(1, budget_unit="edges")
        assert len(tiny.walls) <= 1 or not tiny.atoms

    def test_sensor_budget_unit(self, grid_domain):
        history = [
            grid_domain.junctions_in_bbox(BBox(0, 0, 4, 4)),
            grid_domain.junctions_in_bbox(BBox(5, 5, 10, 10)),
        ]
        plan = SubmodularSelector(grid_domain, history).plan(
            8, budget_unit="sensors"
        )
        assert len(plan.sensors) <= 8 + 24  # greedy may slightly round

    def test_invalid_budget_unit(self, grid_domain):
        history = [grid_domain.junctions_in_bbox(BBox(0, 0, 4, 4))]
        with pytest.raises(SelectionError):
            SubmodularSelector(grid_domain, history).plan(5, budget_unit="x")

    def test_empty_history_rejected(self, grid_domain):
        with pytest.raises(SelectionError):
            SubmodularSelector(grid_domain, [])

    def test_selector_interface(self, grid_domain):
        from repro.selection import SensorCandidates

        history = [grid_domain.junctions_in_bbox(BBox(0, 0, 6, 6))]
        selector = SubmodularSelector(grid_domain, history)
        candidates = SensorCandidates.from_domain(grid_domain)
        chosen = selector.select(candidates, 5, np.random.default_rng(0))
        assert len(chosen) <= 5
