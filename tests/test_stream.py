"""Streaming ingestion: the LSM-style event store, incremental compiled
appends, and the stale-cache/consistency sweep.

Covers:

- :class:`repro.stream.StreamingEventStore` unit behaviour (wall
  filtering, generation bumps, auto-compaction, bounded block merges,
  snapshot round-trip, closed-store guards);
- the :meth:`repro.forms.CompiledTrackingForm.append_events` stale
  boundary-LRU regression (pre-PR the class had no append path and the
  compiled-boundary cache could never be invalidated on mutation);
- randomized streaming ↔ batch equivalence: arrival order ×
  compaction cadence × planner (python / compiled / sharded) must be
  field-identical, including a query issued *mid-compaction*;
- terminal ``close()`` semantics (structured QueryError, never a bare
  AttributeError from a released resource);
- :class:`repro.query.ContinuousCountMonitor` drift under duplicate /
  out-of-order delivery, the ordering contract with history on, and
  generation-memoised exact recovery via ``reevaluate``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from test_query_planner import _battery, _key

from repro.core import FrameworkConfig, InNetworkFramework
from repro.errors import ConfigurationError, QueryError
from repro.forms import CompiledTrackingForm, TrackingForm
from repro.geometry import BBox
from repro.mobility import MobilityDomain, grid_city
from repro.planar import EdgeInterner
from repro.query import (
    ContinuousCountMonitor,
    QueryEngine,
    RangeQuery,
    ShardedQueryEngine,
)
from repro.stream import StreamingEventStore, replay
from repro.trajectories import (
    CrossingEvent,
    EventColumns,
    WorkloadConfig,
    generate_workload,
)

HORIZON = 86400.0


# ----------------------------------------------------------------------
# Shared small deployment (module-scoped: many grid combinations below)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def grid_road():
    return grid_city(rows=6, cols=6, jitter=0.0, drop_fraction=0.0)


@pytest.fixture(scope="module")
def grid_events(grid_road):
    domain = MobilityDomain(grid_road)
    workload = generate_workload(
        domain, WorkloadConfig(n_trips=150, horizon_days=1.0, seed=5)
    )
    return sorted(workload.events(domain), key=lambda e: e.t)


def _deploy(road, *, streaming, planner="auto", shards=1, compact_every=256):
    framework = InNetworkFramework.from_road_graph(road)
    framework.deploy(
        FrameworkConfig(
            budget=10,
            seed=3,
            planner=planner,
            shards=shards,
            streaming=streaming,
            compact_every=compact_every,
        )
    )
    return framework


def _arrange(events, order):
    if order == "sorted":
        return list(events)
    if order == "reversed":
        return list(events)[::-1]
    shuffled = list(events)
    random.Random(17).shuffle(shuffled)
    return shuffled


def _chunks(events, size):
    for start in range(0, len(events), size):
        yield events[start:start + size]


# ----------------------------------------------------------------------
# StreamingEventStore unit behaviour (on the shared organic fixtures)
# ----------------------------------------------------------------------
class TestStreamingEventStore:
    def test_append_filters_to_walls(self, sampled_net, events):
        store = StreamingEventStore(sampled_net, compact_every=10**9)
        observed = store.append_events(events)
        reference = sampled_net.build_form(events)
        assert observed == reference.total_events
        assert store.total_events == observed
        assert store.tail_events == observed  # never compacted
        assert store.block_count == 0
        assert store.generation == 1
        assert store.observed_total == observed

    def test_empty_batch_does_not_bump_generation(self, sampled_net):
        store = StreamingEventStore(sampled_net)
        assert store.append_events([]) == 0
        assert store.generation == 0

    def test_counts_match_batch_form(
        self, sampled_net, sampled_form, events
    ):
        store = StreamingEventStore(sampled_net, compact_every=500)
        replay(store, events, batch=333)
        assert store.compactions > 0
        assert store.tail_events + store.block_events == (
            sampled_form.total_events
        )
        for edge in list(store.edges())[:12]:
            for t in (HORIZON * 0.25, HORIZON * 0.75):
                assert store.net_until(edge, t) == (
                    sampled_form.net_until(edge, t)
                )
                assert store.count_entering(edge, t) == (
                    sampled_form.count_entering(edge, t)
                )
        regions = tuple(
            r for r in range(sampled_net.region_count)
            if r != sampled_net.ext_region
        )[:3]
        boundary = sampled_net.region_boundary(regions)
        assert store.integrate_until(boundary, HORIZON * 0.5) == (
            sampled_form.integrate_until(boundary, HORIZON * 0.5)
        )

    def test_block_merges_bound_fanout(self, sampled_net, sampled_form, events):
        store = StreamingEventStore(
            sampled_net, compact_every=64, max_blocks=2
        )
        replay(store, events, batch=64)
        assert store.block_count <= 2
        assert store.block_merges > 0
        edge = next(iter(store.edges()))
        assert store.net_until(edge, HORIZON) == (
            sampled_form.net_until(edge, HORIZON)
        )

    def test_compact_empty_tail_is_noop(self, sampled_net):
        store = StreamingEventStore(sampled_net)
        assert store.compact() is False
        assert store.generation == 0

    def test_snapshot_columns_round_trip(
        self, organic_domain, sampled_net, events
    ):
        store = StreamingEventStore(sampled_net, compact_every=700)
        replay(store, events, batch=701)
        snapshot = store.snapshot_columns()
        reference = sampled_net.observed_columns(
            EventColumns.from_events(organic_domain, events)
        ).time_sorted()
        # Same multiset of (edge, direction, time) triples; order within
        # equal timestamps may differ between the two paths.
        got = np.lexsort((snapshot.direction, snapshot.edge_id, snapshot.t))
        want = np.lexsort(
            (reference.direction, reference.edge_id, reference.t)
        )
        np.testing.assert_array_equal(
            snapshot.edge_id[got], reference.edge_id[want]
        )
        np.testing.assert_array_equal(
            snapshot.direction[got], reference.direction[want]
        )
        np.testing.assert_array_equal(snapshot.t[got], reference.t[want])

    def test_closed_store_raises_structured(self, sampled_net, events):
        store = StreamingEventStore(sampled_net)
        store.append_events(events[:50])
        store.close()
        store.close()  # idempotent
        assert store.closed
        with pytest.raises(QueryError, match="closed"):
            store.append_events(events[:5])
        with pytest.raises(QueryError, match="closed"):
            store.net_until(("a", "b"), 1.0)
        with pytest.raises(QueryError, match="closed"):
            store.integrate_until([], 1.0)
        with pytest.raises(QueryError, match="closed"):
            store.snapshot_columns()
        assert store.describe()["closed"] is True

    def test_describe_and_repr(self, sampled_net, events):
        store = StreamingEventStore(sampled_net, compact_every=100)
        replay(store, events[:300], batch=100)
        layout = store.describe()
        assert layout["observed_total"] == store.observed_total
        assert layout["blocks"] == store.block_count
        assert "generation" in repr(store) or "tail" in repr(store)


# ----------------------------------------------------------------------
# CompiledTrackingForm.append_events — the stale boundary-LRU regression
# ----------------------------------------------------------------------
def _compile(events, interner=None):
    interner = interner or EdgeInterner()
    ids = np.empty(len(events), dtype=np.int64)
    dirs = np.empty(len(events), dtype=np.int8)
    ts = np.empty(len(events), dtype=np.float64)
    for i, (u, v, t) in enumerate(events):
        eid, forward = interner.intern(u, v)
        ids[i] = eid
        dirs[i] = 0 if forward else 1
        ts[i] = t
    order = np.argsort(ts, kind="stable")
    return (
        CompiledTrackingForm(interner, ids[order], dirs[order], ts[order]),
        interner,
        (ids, dirs, ts),
    )


class TestCompiledAppendRegression:
    EVENTS_A = [("a", "b", 1.0), ("b", "c", 2.0), ("c", "a", 3.0),
                ("b", "a", 4.0), ("a", "b", 5.0)]
    EVENTS_B = [("a", "b", 2.5), ("b", "c", 0.5), ("a", "c", 6.0)]

    def test_query_append_requery(self):
        """Pre-PR regression: a compiled boundary chain cached by a
        query survived mutation, so a re-query after an append served
        the stale prefix sums (and pre-PR there was no append path at
        all — this test fails with AttributeError there)."""
        form, interner, _ = _compile(self.EVENTS_A)
        chain = (("a", "b"), ("b", "c"))
        before = form.integrate_until(chain, 10.0)
        assert form.generation == 0

        _, _, (ids, dirs, ts) = _compile(self.EVENTS_B, interner)
        appended = form.append_events(ids, dirs, ts)
        assert appended == len(self.EVENTS_B)
        assert form.generation == 1

        fresh, _, _ = _compile(self.EVENTS_A + self.EVENTS_B)
        for t in (0.4, 2.6, 10.0):
            assert form.integrate_until(chain, t) == (
                fresh.integrate_until(chain, t)
            ), "stale boundary cache served after append"
        assert form.integrate_until(chain, 10.0) != before

    def test_id_native_chain_also_invalidated(self):
        form, interner, _ = _compile(self.EVENTS_A)
        eid, _ = interner.intern("a", "b")
        wall_ids = np.array([eid], dtype=np.int64)
        signs = np.array([1], dtype=np.int8)
        form.integrate_until_ids(wall_ids, signs, 10.0)  # primes the LRU

        _, _, arrays = _compile(self.EVENTS_B, interner)
        form.append_events(*arrays)
        fresh, _, _ = _compile(self.EVENTS_A + self.EVENTS_B)
        assert form.integrate_until_ids(wall_ids, signs, 10.0) == (
            fresh.integrate_until_ids(wall_ids, signs, 10.0)
        )

    def test_append_matches_tracking_form(self):
        form, interner, _ = _compile(self.EVENTS_A)
        _, _, arrays = _compile(self.EVENTS_B, interner)
        form.append_events(*arrays)
        tracking = TrackingForm()
        for u, v, t in self.EVENTS_A + self.EVENTS_B:
            tracking.record(u, v, t)
        for edge in tracking.edges():
            for t in (0.0, 1.5, 4.5, 10.0):
                assert form.net_until(edge, t) == tracking.net_until(edge, t)
        assert form.total_events == tracking.total_events

    def test_to_columns_round_trip(self):
        form, interner, _ = _compile(self.EVENTS_A)
        columns = form.to_columns()
        rebuilt = CompiledTrackingForm(
            interner, columns.edge_id.astype(np.int64),
            columns.direction, columns.t,
        )
        for edge in form.edges():
            assert rebuilt.net_until(edge, 10.0) == form.net_until(edge, 10.0)


# ----------------------------------------------------------------------
# Streaming ↔ batch equivalence grid
# ----------------------------------------------------------------------
class TestStreamingBatchEquivalence:
    @pytest.mark.parametrize("order", ["sorted", "shuffled", "reversed"])
    @pytest.mark.parametrize("compact_every", [64, 256, 10**9])
    def test_streamed_equals_batch(
        self, grid_road, grid_events, order, compact_every
    ):
        batch = _deploy(grid_road, streaming=False)
        batch.ingest_events(grid_events)
        streamed = _deploy(
            grid_road, streaming=True, compact_every=compact_every
        )
        for window in _chunks(_arrange(grid_events, order), 97):
            streamed.ingest_events(window)
        store = streamed.streaming_store
        assert store.total_events == batch._form.total_events

        queries = _battery(streamed.domain, HORIZON, seed=23, n_boxes=8)
        reference = [
            _key(batch.engine(sharded=False).execute(q)) for q in queries
        ]
        for planner in ("python", "compiled"):
            engine = QueryEngine(
                streamed.network, store, planner=planner
            )
            got = [_key(engine.execute(q)) for q in queries]
            assert got == reference, (order, compact_every, planner)
        batch.close()
        streamed.close()

    def test_sharded_streaming_equivalence(self, grid_road, grid_events):
        batch = _deploy(grid_road, streaming=False)
        batch.ingest_events(grid_events)
        streamed = _deploy(
            grid_road, streaming=True, shards=2, compact_every=128
        )
        for window in _chunks(_arrange(grid_events, "shuffled"), 173):
            streamed.ingest_events(window)
        engine = streamed.engine()
        assert isinstance(engine, ShardedQueryEngine)
        queries = _battery(streamed.domain, HORIZON, seed=29, n_boxes=6)
        got = [_key(r) for r in engine.execute_batch(queries)]
        want = [
            _key(batch.engine(sharded=False).execute(q)) for q in queries
        ]
        assert got == want
        batch.close()
        streamed.close()

    def test_append_invalidates_sharded_engine(self, grid_road, grid_events):
        framework = _deploy(grid_road, streaming=True, shards=2)
        framework.ingest_events(grid_events[:400])
        first = framework.engine()
        framework.ingest_events(grid_events[400:500])
        second = framework.engine()
        assert first.closed
        assert second is not first
        framework.close()

    def test_query_during_compaction(self, grid_road, grid_events):
        """A query fired from the ``built`` compaction phase — the new
        block exists but the swap has not happened — must see exactly
        one copy of every event."""
        framework = _deploy(
            grid_road, streaming=True, compact_every=10**9
        )
        framework.ingest_events(grid_events)
        store = framework.streaming_store
        engine = QueryEngine(framework.network, store, planner="compiled")
        query = RangeQuery(framework.domain.bounds, 0.0, HORIZON * 0.6)
        before = engine.execute(query).value

        seen = {}

        def probe(s, phase):
            seen[phase] = engine.execute(query).value

        store.on_compact(probe)
        assert store.compact() is True
        assert seen["built"] == before, "mid-compaction double/zero count"
        assert seen["swapped"] == before
        assert engine.execute(query).value == before
        assert store.tail_events == 0 and store.block_count == 1
        framework.close()

    def test_flight_digest_changes_on_append(self, grid_road, grid_events):
        """Satellite: the flight-recorder digest must change on every
        append so repeated rectangles over mutated data never group as
        one query."""
        framework = _deploy(grid_road, streaming=True)
        framework.ingest_events(grid_events[:600])
        box = framework.domain.bounds
        framework.query(box, 0.0, HORIZON)
        first = framework.flight_log().records[-1]
        framework.ingest_events(grid_events[600:700])
        framework.query(box, 0.0, HORIZON)
        second = framework.flight_log().records[-1]
        assert first.generation is not None
        assert second.generation > first.generation
        assert first.digest != second.digest
        framework.close()

    def test_static_store_digest_stable(self, grid_road, grid_events):
        """On an unchanged store, repeated identical queries keep
        grouping under one digest (the generation is stable)."""
        framework = _deploy(grid_road, streaming=False)
        framework.ingest_events(grid_events[:200])
        box = framework.domain.bounds
        framework.query(box, 0.0, HORIZON)
        framework.query(box, 0.0, HORIZON)
        records = framework.flight_log().records
        assert records[-1].generation == records[-2].generation
        assert records[-1].digest == records[-2].digest
        framework.close()


# ----------------------------------------------------------------------
# Terminal close semantics
# ----------------------------------------------------------------------
class TestClosedFramework:
    def test_close_is_terminal_and_structured(self, grid_road, grid_events):
        framework = _deploy(grid_road, streaming=True)
        framework.ingest_events(grid_events[:100])
        store = framework.streaming_store
        framework.close()
        assert framework.closed
        assert store.closed
        with pytest.raises(QueryError, match="closed"):
            framework.ingest_events(grid_events[:5])
        with pytest.raises(QueryError, match="closed"):
            framework.query(framework.domain.bounds, 0.0, HORIZON)
        with pytest.raises(QueryError, match="closed"):
            framework.query_exact(framework.domain.bounds, 0.0, HORIZON)
        with pytest.raises(QueryError, match="closed"):
            framework.deploy(FrameworkConfig(budget=8))
        with pytest.raises(QueryError, match="closed"):
            framework.monitor()
        framework.close()  # idempotent

    def test_close_reaps_profiler_thread(self, grid_road, grid_events):
        """The sampler thread is finalizer-owned like the shm segments:
        ``framework.close()`` must stop and join it, leaving no
        dangling ``repro-profiler`` thread behind."""
        import threading

        framework = InNetworkFramework.from_road_graph(grid_road)
        framework.deploy(
            FrameworkConfig(
                budget=10, seed=3, streaming=True, profile_hz=200.0
            )
        )
        framework.ingest_events(grid_events[:100])
        profiler = framework.profiler
        assert profiler is not None and profiler.running
        sampler = profiler._thread
        assert sampler in threading.enumerate()
        framework.close()
        assert not profiler.running
        assert sampler not in threading.enumerate()
        assert not any(
            thread.name == "repro-profiler" and thread.is_alive()
            for thread in threading.enumerate()
        )
        framework.close()  # idempotent

    def test_streaming_requires_exact_store(self):
        with pytest.raises(ConfigurationError, match="streaming"):
            FrameworkConfig(streaming=True, store="linear")
        with pytest.raises(ConfigurationError, match="compact_every"):
            FrameworkConfig(compact_every=0)

    def test_monitor_requires_streaming(self, grid_road):
        framework = _deploy(grid_road, streaming=False)
        with pytest.raises(QueryError, match="streaming"):
            framework.monitor()
        framework.close()


# ----------------------------------------------------------------------
# Monitor consistency: drift, ordering contract, exact recovery
# ----------------------------------------------------------------------
class TestMonitorConsistency:
    WATCH = BBox(1.5, 1.5, 8.5, 8.5)

    def test_out_of_order_counts_match_oracle(self, sampled_net, events):
        """The count fold is commutative: shuffled delivery must land on
        the same counts as sorted delivery, and ``last_event_time``
        must be the max (pre-PR it was last-seen and regressed)."""
        sorted_events = sorted(events[:2000], key=lambda e: e.t)
        shuffled = list(sorted_events)
        random.Random(3).shuffle(shuffled)

        oracle = ContinuousCountMonitor(sampled_net)
        oracle_state = oracle.add_region("centre", self.WATCH)
        oracle.observe_stream(sorted_events)

        monitor = ContinuousCountMonitor(sampled_net)
        state = monitor.add_region("centre", self.WATCH)
        monitor.observe_stream(shuffled)

        assert state.count == oracle_state.count
        assert state.entries == oracle_state.entries
        assert state.exits == oracle_state.exits
        assert state.last_event_time == oracle_state.last_event_time

    def test_history_enforces_ordering_contract(self, sampled_net):
        monitor = ContinuousCountMonitor(sampled_net, keep_history=True)
        state = monitor.add_region("centre", self.WATCH)
        tail, head = state.boundary[0]
        monitor.observe(CrossingEvent(tail, head, 100.0))
        count_before = state.count
        with pytest.raises(QueryError, match="out-of-order"):
            monitor.observe(CrossingEvent(tail, head, 50.0))
        # The rejected event mutated nothing.
        assert state.count == count_before
        assert state.last_event_time == 100.0
        times = [t for t, _ in state.history]
        assert times == sorted(times)

    def test_without_history_out_of_order_is_fine(self, sampled_net):
        monitor = ContinuousCountMonitor(sampled_net)
        state = monitor.add_region("centre", self.WATCH)
        tail, head = state.boundary[0]
        monitor.observe(CrossingEvent(tail, head, 100.0))
        monitor.observe(CrossingEvent(tail, head, 50.0))
        assert state.last_event_time == 100.0

    def test_duplicate_drift_repaired_by_reevaluate(
        self, grid_road, grid_events
    ):
        framework = _deploy(grid_road, streaming=True, compact_every=512)
        monitor = framework.monitor()
        bounds = framework.domain.bounds
        watch = BBox.from_center(
            bounds.center, bounds.width * 0.6, bounds.height * 0.6
        )
        state = monitor.add_region("centre", watch)
        framework.ingest_events(grid_events)
        store = framework.streaming_store
        exact = store.integrate_until(state.boundary, HORIZON * 2)
        assert state.count == exact  # exactly-once fold via the store

        # Simulate at-least-once delivery: the same window folded again
        # directly.  The store holds each event once; the monitor now
        # drifts (anonymous events cannot be deduplicated).
        relevant = monitor.observe_stream(grid_events[:400])
        if relevant:
            assert state.count != exact
        repaired = store.resync(monitor, HORIZON * 2)
        assert repaired["centre"] == exact
        assert state.count == exact
        framework.close()

    def test_reevaluate_is_generation_memoised(self, grid_road, grid_events):
        framework = _deploy(grid_road, streaming=True)
        monitor = framework.monitor()
        bounds = framework.domain.bounds
        monitor.add_region(
            "centre",
            BBox.from_center(
                bounds.center, bounds.width * 0.6, bounds.height * 0.6
            ),
        )
        framework.ingest_events(grid_events[:500])
        store = framework.streaming_store
        first = store.resync(monitor, HORIZON)
        assert store.resync(monitor, HORIZON) == first  # memo hit
        framework.ingest_events(grid_events[500:600])
        second = store.resync(monitor, HORIZON)  # new generation, fresh
        assert second["centre"] == store.integrate_until(
            monitor.state("centre").boundary, HORIZON
        )
        framework.close()
