"""Columnar event store + compiled tracking forms + batched evaluation.

Covers the vectorised ingestion substrate end to end:

- :class:`repro.trajectories.EventColumns` construction, time sorting
  and round-tripping;
- :class:`repro.forms.CompiledTrackingForm` ≡
  :class:`repro.forms.TrackingForm` equivalence (unit, property-based
  over random/shuffled event streams, and on the SMALL_CONFIG pipeline
  for the full standard query battery);
- the vectorised ``SensorNetwork.build_form`` wall filter;
- ``QueryEngine.execute_batch`` ≡ ``execute``;
- the construction-tuple form cache in the evaluation pipeline.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.evaluation import SMALL_CONFIG, get_pipeline
from repro.evaluation.harness import STANDARD_AREA_FRACTIONS
from repro.forms import CompiledTrackingForm, TrackingForm
from repro.planar import EdgeInterner
from repro.query import QueryEngine
from repro.sampling import wall_network
from repro.trajectories import CrossingEvent, EventColumns


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def compile_events(events, interner=None):
    """Build (TrackingForm, CompiledTrackingForm) from one event list."""
    form = TrackingForm()
    for u, v, t in events:
        form.record(u, v, t)
    interner = interner or EdgeInterner()
    ids = np.empty(len(events), dtype=np.int64)
    dirs = np.empty(len(events), dtype=np.int8)
    ts = np.empty(len(events), dtype=np.float64)
    for i, (u, v, t) in enumerate(events):
        eid, forward = interner.intern(u, v)
        ids[i] = eid
        dirs[i] = 0 if forward else 1
        ts[i] = t
    order = np.argsort(ts, kind="stable")
    compiled = CompiledTrackingForm(interner, ids[order], dirs[order], ts[order])
    return form, compiled


NODES = ["a", "b", "c", "d"]
EDGES = [(u, v) for i, u in enumerate(NODES) for v in NODES[i + 1:]]


event_streams = st.lists(
    st.tuples(
        st.sampled_from(EDGES),
        st.booleans(),
        st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
    ),
    max_size=80,
).map(
    lambda raw: [
        ((v, u, t) if flip else (u, v, t)) for (u, v), flip, t in raw
    ]
)


# ----------------------------------------------------------------------
# EventColumns
# ----------------------------------------------------------------------
class TestEventColumns:
    def test_round_trip(self, organic_domain, events):
        columns = EventColumns.from_events(organic_domain, events)
        assert len(columns) == len(events)
        # Stream is already time-sorted; columnarisation preserves it.
        back = columns.to_events()
        assert back == events

    def test_time_sorted(self, organic_domain):
        events = [
            CrossingEvent(*pair)
            for pair in [
                (NODES[0], NODES[1], 5.0),
                (NODES[1], NODES[2], 1.0),
                (NODES[2], NODES[0], 3.0),
            ]
        ]
        columns = EventColumns.from_events(organic_domain, events)
        assert list(columns.t) == [1.0, 3.0, 5.0]

    def test_filter_edges_matches_loop(self, organic_domain, events, sampled_net):
        columns = EventColumns.from_events(organic_domain, events)
        fast = sampled_net.observed_columns(columns)
        slow = sampled_net.observed_events(events)
        # The stream is time-sorted and both filters preserve order.
        assert fast.to_events() == slow

    def test_interner_shared_with_domain(self, organic_domain, events):
        columns = EventColumns.from_events(organic_domain, events)
        assert columns.interner is organic_domain.edge_interner


# ----------------------------------------------------------------------
# CompiledTrackingForm ≡ TrackingForm
# ----------------------------------------------------------------------
class TestCompiledEquivalence:
    def test_figure_10_scenario(self):
        events = [
            ("b_out", "sigma", 0.0),
            ("a_out", "sigma", 1.0),
            ("b_out", "sigma", 2.0),
            ("sigma", "c_out", 3.0),
        ]
        form, compiled = compile_events(events)
        boundary = [("a_out", "sigma"), ("b_out", "sigma"), ("c_out", "sigma")]
        for t in (-0.5, 0.0, 1.0, 1.5, 2.0, 3.0, 10.0):
            assert compiled.integrate_until(boundary, t) == form.integrate_until(
                boundary, t
            )
        assert compiled.integrate_until(boundary, 3.0) == 2
        assert compiled.integrate_between(boundary, 1.0, 3.0) == 0
        assert compiled.count_entering(("b_out", "sigma"), 2.0) == 2

    def test_inverted_interval_raises(self):
        _, compiled = compile_events([("a", "b", 1.0)])
        with pytest.raises(QueryError):
            compiled.net_between(("a", "b"), 5.0, 1.0)
        with pytest.raises(QueryError):
            compiled.integrate_between([("a", "b")], 5.0, 1.0)

    def test_unknown_edge_counts_zero(self):
        _, compiled = compile_events([("a", "b", 1.0)])
        assert compiled.count_entering(("x", "y"), 10.0) == 0
        assert compiled.net_until(("x", "y"), 10.0) == 0
        assert compiled.integrate_until([("x", "y")], 10.0) == 0

    @settings(max_examples=60, deadline=None)
    @given(stream=event_streams, seed=st.integers(0, 2**16))
    def test_property_equivalence_under_shuffle(self, stream, seed):
        """Compiled ≡ loop-built counts for random, shuffled streams."""
        shuffled = list(stream)
        random.Random(seed).shuffle(shuffled)
        form, compiled = compile_events(shuffled)

        probes = sorted({t for _, _, t in stream} | {0.0, 5e5, 2e6})
        directed = [(u, v) for u, v in EDGES] + [(v, u) for u, v in EDGES]
        for edge in directed:
            for t in probes:
                assert compiled.count_entering(edge, t) == form.count_entering(
                    edge, t
                )
        for t in probes:
            assert compiled.integrate_until(directed, t) == form.integrate_until(
                directed, t
            )
        for t1, t2 in zip(probes, probes[1:]):
            assert compiled.integrate_between(
                directed, t1, t2
            ) == form.integrate_between(directed, t1, t2)

    @settings(max_examples=25, deadline=None)
    @given(stream=event_streams)
    def test_property_storage_accounting(self, stream):
        form, compiled = compile_events(stream)
        assert compiled.total_events == form.total_events
        assert compiled.storage_profile() == [
            c for c in form.storage_profile() if c
        ]
        for edge in form.edges():
            plus, minus = form.timestamps(edge)
            cplus, cminus = compiled.timestamps(edge)
            assert sorted(plus) == cplus
            assert sorted(minus) == cminus
            assert compiled.event_count(edge) == form.event_count(edge)

    def test_from_tracking_form(self):
        events = [("a", "b", 3.0), ("b", "a", 1.0), ("c", "d", 2.0)]
        form, _ = compile_events(events)
        compiled = CompiledTrackingForm.from_tracking_form(form, EdgeInterner())
        for edge in [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")]:
            for t in (0.0, 1.0, 2.5, 4.0):
                assert compiled.net_until(edge, t) == form.net_until(edge, t)


# ----------------------------------------------------------------------
# Vectorised network ingestion
# ----------------------------------------------------------------------
class TestVectorisedBuildForm:
    def test_columnar_matches_loop(self, organic_domain, events, sampled_net):
        columns = EventColumns.from_events(organic_domain, events)
        loop_form = sampled_net.build_form_loop(events)
        compiled = sampled_net.build_form(columns)
        assert isinstance(compiled, CompiledTrackingForm)
        assert compiled.total_events == loop_form.total_events
        region = sampled_net.region_ids[0]
        chain = sampled_net.region_boundary([region])
        for t in (0.0, 3600.0, 43200.0, 86400.0):
            assert compiled.integrate_until(chain, t) == loop_form.integrate_until(
                chain, t
            )

    def test_list_input_keeps_legacy_path(self, sampled_net, events):
        form = sampled_net.build_form(events)
        assert isinstance(form, TrackingForm)


# ----------------------------------------------------------------------
# Batched query evaluation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_pipeline():
    return get_pipeline(SMALL_CONFIG)


def standard_battery(p):
    """The full standard battery: every fraction × kind × bound."""
    queries = []
    for fraction in STANDARD_AREA_FRACTIONS:
        base = p.standard_queries(fraction, n=4)
        for query in base:
            for kind in ("static", "transient"):
                for bound in ("lower", "upper"):
                    queries.append(query.with_kind(kind).with_bound(bound))
    return queries


class TestExecuteBatch:
    def test_batch_matches_sequential(self, small_pipeline):
        p = small_pipeline
        network = p.network("quadtree", p.budget_for_fraction(0.3), seed=1)
        engine = p.engine(network)
        queries = standard_battery(p)
        sequential = engine.execute_many(queries)
        batched = engine.execute_batch(queries)
        assert len(batched) == len(sequential)
        for a, b in zip(sequential, batched):
            assert a.missed == b.missed
            assert a.value == b.value
            assert a.edges_accessed == b.edges_accessed
            assert a.nodes_accessed == b.nodes_accessed
            assert tuple(sorted(a.regions)) == tuple(sorted(b.regions))

    def test_compiled_counts_bit_identical_to_tracking_form(
        self, small_pipeline
    ):
        """Acceptance: CompiledTrackingForm ≡ TrackingForm on the
        SMALL_CONFIG pipeline over the full standard query battery
        (static + transient, lower + upper)."""
        p = small_pipeline
        network = p.network("quadtree", p.budget_for_fraction(0.3), seed=1)
        compiled = network.build_form(p.event_columns)
        loop_form = network.build_form_loop(p.events)
        assert isinstance(compiled, CompiledTrackingForm)

        queries = standard_battery(p)
        compiled_results = QueryEngine(network, compiled).execute_batch(queries)
        loop_results = QueryEngine(network, loop_form).execute_many(queries)
        answered = 0
        for a, b in zip(loop_results, compiled_results):
            assert a.missed == b.missed
            if not a.missed:
                assert a.value == b.value
                answered += 1
        assert answered > 0

    def test_full_network_exact_counts_identical(self, small_pipeline):
        p = small_pipeline
        compiled = p.full.build_form(p.event_columns)
        loop_form = p.full.build_form_loop(p.events)
        queries = standard_battery(p)[:40]
        a = QueryEngine(p.full, compiled, access_mode="flood").execute_batch(
            queries
        )
        b = QueryEngine(p.full, loop_form, access_mode="flood").execute_many(
            queries
        )
        assert [r.value for r in a] == [r.value for r in b]
        assert [r.missed for r in a] == [r.missed for r in b]


# ----------------------------------------------------------------------
# Pipeline form cache
# ----------------------------------------------------------------------
class TestFormCache:
    def test_keyed_on_construction_tuple(self, small_pipeline, organic_domain):
        p = small_pipeline
        network = p.network("quadtree", p.budget_for_fraction(0.3), seed=1)
        form = p.form(network)
        # A second network with identical construction shares the entry.
        clone = wall_network(
            p.domain, network.walls, network.sensors, name=network.name
        )
        assert p.form(clone) is form

    def test_distinct_networks_do_not_alias(self, small_pipeline):
        p = small_pipeline
        m = p.budget_for_fraction(0.3)
        n1 = p.network("quadtree", m, seed=1)
        n2 = p.network("uniform", m, seed=1)
        assert p.form(n1) is not p.form(n2)

    def test_key_is_not_id_based(self, small_pipeline):
        p = small_pipeline
        network = p.network("quadtree", p.budget_for_fraction(0.3), seed=1)
        key = p.form_key(network)
        assert not any(
            isinstance(part, int) and part == id(network) for part in key
        )
