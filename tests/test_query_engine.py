"""Unit tests for RangeQuery, QueryResult and QueryEngine."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.geometry import BBox
from repro.query import (
    LOWER,
    QueryEngine,
    QueryResult,
    RangeQuery,
    STATIC,
    TRANSIENT,
    UPPER,
)
from repro.trajectories import net_change, occupancy_count


class TestRangeQuery:
    def test_inverted_interval_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery(BBox(0, 0, 1, 1), 10.0, 5.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery(BBox(0, 0, 1, 1), 0, 1, kind="weird")

    def test_unknown_bound_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery(BBox(0, 0, 1, 1), 0, 1, bound="middle")

    def test_with_bound(self):
        query = RangeQuery(BBox(0, 0, 1, 1), 0, 1)
        assert query.with_bound(UPPER).bound == UPPER
        assert query.bound == LOWER  # original unchanged

    def test_with_kind(self):
        query = RangeQuery(BBox(0, 0, 1, 1), 0, 1)
        assert query.with_kind(TRANSIENT).kind == TRANSIENT

    def test_hashable(self):
        q1 = RangeQuery(BBox(0, 0, 1, 1), 0, 1)
        q2 = RangeQuery(BBox(0, 0, 1, 1), 0, 1)
        assert hash(q1) == hash(q2)
        assert q1 == q2


class TestQueryResult:
    def test_missed_with_value_rejected(self):
        query = RangeQuery(BBox(0, 0, 1, 1), 0, 1)
        with pytest.raises(QueryError):
            QueryResult(query=query, value=3.0, missed=True)


class TestQueryEngineValidation:
    def test_bad_access_mode(self, full_net, full_form):
        with pytest.raises(QueryError):
            QueryEngine(full_net, full_form, access_mode="teleport")

    def test_bad_static_eval(self, full_net, full_form):
        with pytest.raises(QueryError):
            QueryEngine(full_net, full_form, static_eval="median")


class TestFullNetworkQueries:
    """On the unsampled graph every query is answered exactly."""

    @pytest.fixture()
    def engine(self, full_net, full_form):
        return QueryEngine(full_net, full_form)

    def test_static_matches_ground_truth(
        self, engine, organic_domain, workload
    ):
        rng = np.random.default_rng(1)
        for _ in range(10):
            cx, cy = rng.uniform(2, 8, 2)
            box = BBox.from_center((cx, cy), 3.0, 3.0)
            t2 = float(rng.uniform(0.1, 0.9) * workload.horizon)
            query = RangeQuery(box, t2 * 0.5, t2, kind=STATIC)
            result = engine.execute(query)
            region = organic_domain.junctions_in_bbox(box)
            if result.missed:
                assert not region
                continue
            assert result.value == occupancy_count(
                workload.trips, region, t2
            )

    def test_transient_matches_ground_truth(
        self, engine, organic_domain, workload
    ):
        rng = np.random.default_rng(2)
        for _ in range(10):
            cx, cy = rng.uniform(2, 8, 2)
            box = BBox.from_center((cx, cy), 3.0, 3.0)
            t1, t2 = sorted(rng.uniform(0.1, 0.9, 2) * workload.horizon)
            query = RangeQuery(box, t1, t2, kind=TRANSIENT)
            result = engine.execute(query)
            region = organic_domain.junctions_in_bbox(box)
            if result.missed:
                continue
            assert result.value == net_change(workload.trips, region, t1, t2)

    def test_empty_box_misses(self, engine):
        query = RangeQuery(BBox(0.01, 0.01, 0.02, 0.02), 0, 1)
        result = engine.execute(query)
        assert result.missed
        assert result.value == 0.0

    def test_static_eval_modes(self, full_net, full_form, workload):
        box = BBox(2, 2, 8, 8)
        t1, t2 = 0.3 * workload.horizon, 0.6 * workload.horizon
        query = RangeQuery(box, t1, t2)
        end = QueryEngine(full_net, full_form, static_eval="end").execute(query)
        start = QueryEngine(full_net, full_form, static_eval="start").execute(query)
        low = QueryEngine(full_net, full_form, static_eval="min").execute(query)
        assert low.value <= max(end.value, start.value)
        assert low.value == min(end.value, start.value)

    def test_execute_many(self, engine, workload):
        queries = [
            RangeQuery(BBox(2, 2, 7, 7), 0, 0.5 * workload.horizon),
            RangeQuery(BBox(3, 3, 8, 8), 0, 0.5 * workload.horizon),
        ]
        results = engine.execute_many(queries)
        assert len(results) == 2


class TestSampledQueries:
    @pytest.fixture()
    def engine(self, sampled_net, sampled_form):
        return QueryEngine(sampled_net, sampled_form)

    def test_lower_bound_value_exact_on_covered_region(
        self, engine, sampled_net, workload
    ):
        box = BBox(1.5, 1.5, 8.5, 8.5)
        t2 = 0.5 * workload.horizon
        result = engine.execute(RangeQuery(box, 0.0, t2, bound=LOWER))
        if result.missed:
            pytest.skip("sampled graph too coarse for this seed")
        covered = engine.region_junctions(result)
        assert result.value == occupancy_count(workload.trips, covered, t2)

    def test_upper_bound_geq_lower_bound(self, engine, workload):
        box = BBox(2.5, 2.5, 7.5, 7.5)
        t2 = 0.5 * workload.horizon
        lower = engine.execute(RangeQuery(box, 0.0, t2, bound=LOWER))
        upper = engine.execute(RangeQuery(box, 0.0, t2, bound=UPPER))
        if lower.missed or upper.missed:
            pytest.skip("approximation unavailable at this sampling level")
        assert upper.value >= lower.value

    def test_perimeter_cheaper_than_flood(
        self, sampled_net, sampled_form, full_net, full_form, workload
    ):
        box = BBox(2, 2, 8, 8)
        t2 = 0.5 * workload.horizon
        query = RangeQuery(box, 0.0, t2)
        sampled = QueryEngine(sampled_net, sampled_form).execute(query)
        flooded = QueryEngine(
            full_net, full_form, access_mode="flood"
        ).execute(query)
        if not sampled.missed:
            assert sampled.nodes_accessed < flooded.nodes_accessed

    def test_accounting_fields_populated(self, engine, workload):
        box = BBox(1.5, 1.5, 8.5, 8.5)
        result = engine.execute(
            RangeQuery(box, 0.0, 0.5 * workload.horizon)
        )
        if result.missed:
            pytest.skip("missed")
        assert result.edges_accessed > 0
        assert result.nodes_accessed > 0
        assert result.elapsed >= 0.0
        assert result.regions
