"""Unit tests for synthetic road-network generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility import grid_city, organic_city, radial_city
from repro.planar import euler_characteristic, trace_faces


GENERATORS = [
    lambda rng: grid_city(rows=8, cols=8, rng=rng),
    lambda rng: radial_city(rings=4, spokes=10, rng=rng),
    lambda rng: organic_city(blocks=60, rng=rng),
]


@pytest.mark.parametrize("make", GENERATORS)
class TestCommonInvariants:
    def test_connected(self, make):
        graph = make(np.random.default_rng(0))
        assert graph.is_connected()

    def test_no_dead_ends(self, make):
        graph = make(np.random.default_rng(0))
        assert all(graph.degree(n) >= 2 for n in graph.nodes())

    def test_valid_embedding(self, make):
        graph = make(np.random.default_rng(0))
        faces = trace_faces(graph)
        assert euler_characteristic(graph, faces) == 2
        assert faces.outer_face_id is not None

    def test_deterministic_given_seed(self, make):
        g1 = make(np.random.default_rng(7))
        g2 = make(np.random.default_rng(7))
        assert sorted(map(str, g1.edges())) == sorted(map(str, g2.edges()))

    def test_positive_face_areas(self, make):
        graph = make(np.random.default_rng(0))
        faces = trace_faces(graph)
        for face in faces.interior_faces:
            assert face.signed_area > 0


class TestGridCity:
    def test_unperturbed_grid_regular(self):
        graph = grid_city(rows=5, cols=5, jitter=0.0, drop_fraction=0.0)
        assert graph.node_count == 25
        assert graph.edge_count == 40

    def test_drop_fraction_reduces_edges(self):
        dense = grid_city(rows=8, cols=8, drop_fraction=0.0,
                          rng=np.random.default_rng(1))
        sparse = grid_city(rows=8, cols=8, drop_fraction=0.2,
                           rng=np.random.default_rng(1))
        assert sparse.edge_count < dense.edge_count

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_city(rows=1, cols=5)

    def test_invalid_drop_fraction(self):
        with pytest.raises(ConfigurationError):
            grid_city(drop_fraction=0.7)

    def test_extent_respected(self):
        graph = grid_city(rows=5, cols=5, extent=20.0, jitter=0.0)
        box = graph.bounds()
        assert box.max_x == pytest.approx(20.0)


class TestRadialCity:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            radial_city(rings=1)
        with pytest.raises(ConfigurationError):
            radial_city(spokes=2)

    def test_block_count_scales_with_rings(self):
        small = radial_city(rings=3, spokes=8, rng=np.random.default_rng(0))
        large = radial_city(rings=6, spokes=8, rng=np.random.default_rng(0))
        small_faces = len(trace_faces(small).interior_faces)
        large_faces = len(trace_faces(large).interior_faces)
        assert large_faces > small_faces


class TestOrganicCity:
    def test_block_count_close_to_request(self):
        graph = organic_city(blocks=80, rng=np.random.default_rng(2))
        faces = trace_faces(graph)
        # Boundary effects trim a few blocks; stay within 40%.
        assert len(faces.interior_faces) >= 0.6 * 80

    def test_too_few_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            organic_city(blocks=3)

    def test_nodes_inside_extent(self):
        graph = organic_city(blocks=50, extent=10.0,
                             rng=np.random.default_rng(3))
        box = graph.bounds()
        assert box.min_x >= -1e-6 and box.max_x <= 10.0 + 1e-6
        assert box.min_y >= -1e-6 and box.max_y <= 10.0 + 1e-6

    def test_irregular_block_sizes(self):
        # Organic cities should have varied block areas (unlike grids).
        graph = organic_city(blocks=60, rng=np.random.default_rng(4))
        areas = [f.area for f in trace_faces(graph).interior_faces]
        assert np.std(areas) / np.mean(areas) > 0.2
