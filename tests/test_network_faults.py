"""Fault injection, fault-tolerant dispatch and the accounting fixes.

Covers the `repro.network.faults` layer (seeded schedules, retry
policy), the fault-tolerant `NetworkSimulator` paths (byte-identity at
zero rates, detours, server stitching, fan-out skips), the degraded
query engine integration, and the hop/energy accounting regressions
(shared server geometry, endpoint receive costs).
"""

import math

import pytest

from repro import FrameworkConfig, InNetworkFramework
from repro.errors import ConfigurationError, QueryError
from repro.geometry import BBox, distance
from repro.network import (
    EnergyModel,
    FaultConfig,
    FaultInjector,
    NetworkSimulator,
    RadioParameters,
    RetryPolicy,
    default_server_position,
)
from repro.obs import use_registry
from repro.query import QueryEngine, RangeQuery
from repro.sampling import full_network


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
class TestFaultConfig:
    @pytest.mark.parametrize(
        "field", ["sensor_failure_rate", "intermittent_rate",
                  "availability", "drop_rate"]
    )
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probabilities_validated(self, field, bad):
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: bad})

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(base_latency=-1.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(hop_latency=-0.1)

    def test_active(self):
        assert not FaultConfig().active
        assert not FaultConfig(seed=5, availability=0.1).active
        assert FaultConfig(sensor_failure_rate=0.1).active
        assert FaultConfig(intermittent_rate=0.1).active
        assert FaultConfig(drop_rate=0.1).active


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(stitch_after=0)

    def test_wait_backs_off_exponentially(self):
        policy = RetryPolicy(timeout=2.0, backoff=3.0)
        assert policy.wait(0) == 2.0
        assert policy.wait(1) == 6.0
        assert policy.wait(2) == 18.0


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class TestFaultInjector:
    SENSORS = list(range(40))

    def test_schedule_deterministic_per_seed(self):
        config = FaultConfig(seed=3, sensor_failure_rate=0.3,
                             intermittent_rate=0.2)
        a = FaultInjector(config, self.SENSORS)
        b = FaultInjector(config, self.SENSORS)
        assert a.crashed == b.crashed
        assert a.flaky == b.flaky
        assert a.crashed
        assert a.crashed.isdisjoint(a.flaky)

    def test_schedule_varies_with_seed(self):
        schedules = {
            FaultInjector(
                FaultConfig(seed=seed, sensor_failure_rate=0.3),
                self.SENSORS,
            ).crashed
            for seed in range(6)
        }
        assert len(schedules) > 1

    def test_zero_rates_draw_nothing(self):
        injector = FaultInjector(FaultConfig(seed=9), self.SENSORS)
        assert injector.crashed == frozenset()
        assert injector.flaky == frozenset()
        assert all(injector.responds(s) for s in self.SENSORS)
        assert all(injector.delivered() for _ in range(20))

    def test_explicit_overrides(self):
        injector = FaultInjector(
            FaultConfig(), self.SENSORS, crashed=[1, 2], flaky=[2, 3]
        )
        assert injector.crashed == frozenset({1, 2})
        # Flaky is kept disjoint from crashed.
        assert injector.flaky == frozenset({3})
        assert injector.is_crashed(1)
        assert not injector.responds(1)
        assert injector.responds(7)

    def test_server_always_responds(self):
        injector = FaultInjector(
            FaultConfig(sensor_failure_rate=1.0), self.SENSORS
        )
        assert injector.crashed == frozenset(self.SENSORS)
        assert injector.responds(None)

    def test_flaky_sensor_responds_sometimes(self):
        injector = FaultInjector(
            FaultConfig(seed=1, availability=0.5),
            self.SENSORS,
            flaky=[0],
        )
        answers = {injector.responds(0) for _ in range(50)}
        assert answers == {True, False}

    def test_drops_follow_rate(self):
        injector = FaultInjector(
            FaultConfig(seed=2, drop_rate=0.5), self.SENSORS
        )
        outcomes = [injector.delivered() for _ in range(200)]
        assert 40 < sum(outcomes) < 160

    def test_message_latency(self):
        injector = FaultInjector(
            FaultConfig(base_latency=2.0, hop_latency=0.25), self.SENSORS
        )
        assert injector.message_latency(4) == 3.0

    def test_for_network(self, sampled_net):
        injector = FaultInjector.for_network(
            sampled_net, FaultConfig(seed=0, sensor_failure_rate=1.0)
        )
        assert injector.crashed == frozenset(sampled_net.sensors)


# ----------------------------------------------------------------------
# Byte-identity of the fault-aware paths at zero failure rates
# ----------------------------------------------------------------------
class TestZeroRateIdentity:
    @pytest.mark.parametrize("strategy", ["server_fanout", "perimeter_walk"])
    def test_reports_identical_without_and_with_idle_injector(
        self, sampled_net, strategy
    ):
        sensors = list(sampled_net.sensors[:8])
        plain = NetworkSimulator(sampled_net).dispatch(
            sensors, strategy=strategy
        )
        idle = FaultInjector.for_network(sampled_net, FaultConfig(seed=4))
        faulty = NetworkSimulator(sampled_net, faults=idle).dispatch(
            sensors, strategy=strategy
        )
        assert faulty.messages == plain.messages
        assert faulty.hops == plain.hops
        assert faulty.load == plain.load
        assert faulty.sensors_contacted == plain.sensors_contacted
        assert faulty.skipped_sensors == ()
        assert faulty.retries == 0
        assert faulty.drops == 0
        assert faulty.coverage == 1.0
        assert not faulty.degraded

    def test_faultless_report_trivial_degradation_fields(self, sampled_net):
        report = NetworkSimulator(sampled_net).dispatch(
            list(sampled_net.sensors[:5])
        )
        assert report.error_fraction == 0.0
        assert report.latency == 0.0
        assert report.server_stitches == 0


# ----------------------------------------------------------------------
# Fault-tolerant dispatch
# ----------------------------------------------------------------------
class TestFaultyDispatch:
    def _simulator(self, network, crashed, **retry):
        injector = FaultInjector(
            FaultConfig(), network.sensors, crashed=crashed
        )
        return NetworkSimulator(
            network, faults=injector, retry=RetryPolicy(**retry)
        )

    def test_walk_detours_around_dead_sensor(self, sampled_net):
        sensors = list(sampled_net.sensors[:8])
        order = NetworkSimulator(sampled_net)._angular_order(sensors)
        dead = order[3]
        simulator = self._simulator(sampled_net, [dead], max_retries=2)
        report = simulator.dispatch(sensors, strategy="perimeter_walk")
        assert report.skipped_sensors == (dead,)
        assert report.detours == 1
        assert report.retries == 2  # the dead sensor's extra attempts
        assert report.sensors_contacted == len(sensors) - 1
        assert report.load[dead] == 0
        assert report.coverage == pytest.approx(7 / 8)
        assert report.degraded

    def test_walk_stitches_through_server_after_dead_run(self, sampled_net):
        sensors = list(sampled_net.sensors[:8])
        order = NetworkSimulator(sampled_net)._angular_order(sensors)
        dead = order[1:5]  # four consecutive unreachable sensors
        simulator = self._simulator(
            sampled_net, dead, max_retries=0, stitch_after=3
        )
        report = simulator.dispatch(sensors, strategy="perimeter_walk")
        assert report.server_stitches == 1
        assert report.detours == 4
        assert set(report.skipped_sensors) == set(dead)
        assert report.sensors_contacted == len(sensors) - 4

    def test_walk_all_dead_reports_zero_coverage(self, sampled_net):
        sensors = list(sampled_net.sensors[:6])
        simulator = self._simulator(sampled_net, sensors, max_retries=1)
        report = simulator.dispatch(sensors, strategy="perimeter_walk")
        assert report.sensors_contacted == 0
        assert report.coverage == 0.0
        assert report.error_fraction == 1.0
        assert set(report.skipped_sensors) == set(sensors)

    def test_fanout_skips_dead_sensor(self, sampled_net):
        sensors = list(sampled_net.sensors[:6])
        dead = sensors[2]
        simulator = self._simulator(sampled_net, [dead], max_retries=2)
        report = simulator.dispatch(sensors, strategy="server_fanout")
        assert report.skipped_sensors == (dead,)
        assert report.sensors_contacted == 5
        assert report.load[dead] == 0
        # 5 reached round trips + 3 unanswered request attempts.
        assert report.messages == 5 * 2 + 3
        assert report.retries == 2

    @pytest.mark.parametrize("strategy", ["server_fanout", "perimeter_walk"])
    def test_certain_drops_lose_everything(self, sampled_net, strategy):
        injector = FaultInjector(
            FaultConfig(seed=0, drop_rate=1.0), sampled_net.sensors
        )
        simulator = NetworkSimulator(sampled_net, faults=injector)
        sensors = list(sampled_net.sensors[:5])
        report = simulator.dispatch(sensors, strategy=strategy)
        assert report.coverage == 0.0
        assert report.sensors_contacted == 0
        assert report.drops == report.messages
        assert report.latency > 0.0

    def test_faulty_latency_includes_backoff(self, sampled_net):
        sensors = list(sampled_net.sensors[:5])
        idle = NetworkSimulator(
            sampled_net,
            faults=FaultInjector(FaultConfig(), sampled_net.sensors),
        ).dispatch(sensors, strategy="perimeter_walk")
        degraded = self._simulator(
            sampled_net, [sensors[0]], max_retries=2
        ).dispatch(sensors, strategy="perimeter_walk")
        assert degraded.latency > idle.latency


# ----------------------------------------------------------------------
# Dispatch metrics
# ----------------------------------------------------------------------
class TestDispatchMetrics:
    def test_fault_counters_match_report(self, sampled_net):
        sensors = list(sampled_net.sensors[:8])
        order = NetworkSimulator(sampled_net)._angular_order(sensors)
        injector = FaultInjector(
            FaultConfig(), sampled_net.sensors, crashed=order[1:5]
        )
        with use_registry() as registry:
            simulator = NetworkSimulator(
                sampled_net,
                faults=injector,
                retry=RetryPolicy(max_retries=0, stitch_after=3),
            )
            report = simulator.dispatch(sensors, strategy="perimeter_walk")
            value = registry.value
            assert value(
                "repro_sim_detours_total", strategy="perimeter_walk"
            ) == report.detours
            assert value(
                "repro_sim_stitches_total", strategy="perimeter_walk"
            ) == report.server_stitches
            assert value(
                "repro_sim_retries_total", strategy="perimeter_walk"
            ) == report.retries
            assert value(
                "repro_sim_drops_total", strategy="perimeter_walk"
            ) == report.drops
            assert value(
                "repro_sim_degraded_dispatches_total",
                strategy="perimeter_walk",
            ) == 1
            hist = registry.histogram(
                "repro_sim_degradation", strategy="perimeter_walk"
            )
            assert hist.count == 1
            assert hist.sum == pytest.approx(report.error_fraction)

    def test_no_fault_metrics_without_injector(self, sampled_net):
        with use_registry() as registry:
            NetworkSimulator(sampled_net).dispatch(
                list(sampled_net.sensors[:5])
            )
            assert registry.value(
                "repro_sim_dispatches_total", strategy="perimeter_walk"
            ) == 1
            assert registry.value(
                "repro_sim_drops_total", strategy="perimeter_walk"
            ) == 0
            assert registry.value(
                "repro_sim_degraded_dispatches_total",
                strategy="perimeter_walk",
            ) == 0


# ----------------------------------------------------------------------
# Satellite 1/3: hop accounting agrees with the energy geometry
# ----------------------------------------------------------------------
class TestHopEnergyAgreement:
    def test_shared_server_position_and_mean_hop(self, sampled_net):
        simulator = NetworkSimulator(sampled_net)
        model = EnergyModel(sampled_net)
        assert simulator.server_position == model.server_position
        assert simulator.server_position == default_server_position(
            sampled_net.domain
        )
        mean = sampled_net.domain.dual.mean_interior_edge_length()
        assert simulator._mean_hop == mean
        assert model._mean_hop == mean

    def test_mean_interior_edge_length_cached_and_positive(
        self, organic_domain
    ):
        dual = organic_domain.dual
        first = dual.mean_interior_edge_length()
        assert first > 0.0
        assert dual.mean_interior_edge_length() == first

    def test_uplink_hops_use_distance_not_constant(self, sampled_net):
        simulator = NetworkSimulator(sampled_net)
        server = simulator.server_position
        mean = sampled_net.domain.dual.mean_interior_edge_length()
        for sensor in sampled_net.sensors:
            expected = max(
                int(round(
                    distance(
                        server, sampled_net.domain.dual.position(sensor)
                    ) / mean
                )),
                1,
            )
            assert simulator.uplink_hops(sensor) == expected
        # The regression: server legs used to charge a constant 1 hop.
        assert any(
            simulator.uplink_hops(s) > 1 for s in sampled_net.sensors
        )

    def test_walk_hops_decompose_into_both_server_legs(self, sampled_net):
        simulator = NetworkSimulator(sampled_net)
        sensors = list(sampled_net.sensors[:7])
        order = simulator._angular_order(sensors)
        expected = simulator.uplink_hops(order[0])
        for a, b in zip(order, order[1:]):
            expected += simulator._hops_between(a, b)
        expected += simulator.uplink_hops(order[-1])
        report = simulator.dispatch(sensors, strategy="perimeter_walk")
        assert report.hops == expected


# ----------------------------------------------------------------------
# Satellite 2: endpoint receive costs in query_energy
# ----------------------------------------------------------------------
class TestQueryEnergyReceives:
    def test_hand_computed_three_sensor_perimeter(self, sampled_net):
        # amplifier=0 makes every transmit cost exactly tx_electronics,
        # so the whole dispatch is hand-countable in (tx + rx) units.
        radio = RadioParameters(
            tx_electronics=7.0, rx_electronics=3.0, amplifier=0.0
        )
        model = EnergyModel(sampled_net, radio)
        dual = sampled_net.domain.dual
        mean = dual.mean_interior_edge_length()
        s0, s1, s2 = sampled_net.sensors[:3]

        def steps(a, b):
            d = distance(dual.position(a), dual.position(b))
            return max(int(round(d / mean)), 1)

        # server->s0 (tx+rx), each relay hop (tx+rx), s2->server (tx+rx)
        legs = 2 + steps(s0, s1) + steps(s1, s2)
        assert model.query_energy([s0, s1, s2]) == pytest.approx(
            legs * (7.0 + 3.0)
        )

    def test_single_sensor_pays_both_endpoint_receives(self, sampled_net):
        radio = RadioParameters(
            tx_electronics=7.0, rx_electronics=3.0, amplifier=0.0
        )
        model = EnergyModel(sampled_net, radio)
        sensor = sampled_net.sensors[0]
        # Request down + reply up, each with its receive.
        assert model.query_energy([sensor]) == pytest.approx(20.0)
        assert model.query_energy([sensor, sensor]) == pytest.approx(20.0)

    def test_empty_perimeter_costs_nothing(self, sampled_net):
        assert EnergyModel(sampled_net).query_energy([]) == 0.0

    def test_receives_scale_with_rx_cost(self, sampled_net):
        sensors = list(sampled_net.sensors[:4])
        cheap = EnergyModel(
            sampled_net, RadioParameters(rx_electronics=0.0)
        ).query_energy(sensors)
        costly = EnergyModel(
            sampled_net, RadioParameters(rx_electronics=50.0)
        ).query_energy(sensors)
        assert costly > cheap


# ----------------------------------------------------------------------
# Satellite 4: simulator edge cases
# ----------------------------------------------------------------------
class TestSimulatorEdgeCases:
    def test_single_sensor_walk(self, sampled_net):
        simulator = NetworkSimulator(sampled_net)
        sensor = sampled_net.sensors[0]
        report = simulator.dispatch([sensor], strategy="perimeter_walk")
        assert report.sensors_contacted == 1
        assert report.messages == 2  # server->sensor, sensor->server
        assert report.load == {sensor: 2}
        assert report.hops == 2 * simulator.uplink_hops(sensor)
        assert report.coverage == 1.0

    def test_single_sensor_fanout(self, sampled_net):
        sensor = sampled_net.sensors[0]
        report = NetworkSimulator(sampled_net).dispatch(
            [sensor], strategy="server_fanout"
        )
        assert report.sensors_contacted == 1
        assert report.messages == 2
        assert report.load == {sensor: 2}

    @pytest.mark.parametrize("strategy", ["server_fanout", "perimeter_walk"])
    def test_duplicate_sensor_ids_deduplicated(self, sampled_net, strategy):
        simulator = NetworkSimulator(sampled_net)
        a, b = sampled_net.sensors[:2]
        report = simulator.dispatch([a, b, a, b, a], strategy=strategy)
        assert report.sensors_contacted == 2
        assert set(report.load) == {a, b}
        assert sum(report.load.values()) == report.messages

    def test_collinear_sensors_order_deterministically(self, grid_domain):
        # On the jitter-free grid, block centres in one row are exactly
        # collinear with their centroid, so the angular sort ties on
        # the atan2 key and must fall back to the sensor id.
        network = full_network(grid_domain)
        dual = grid_domain.dual
        rows = {}
        for sensor in network.sensors:
            rows.setdefault(round(dual.position(sensor)[1], 6), []).append(
                sensor
            )
        row = max(rows.values(), key=len)
        assert len(row) >= 4
        simulator = NetworkSimulator(network)
        order = simulator._angular_order(list(row))
        assert sorted(order) == sorted(row)
        assert order == simulator._angular_order(list(row))
        report = simulator.dispatch(list(row), strategy="perimeter_walk")
        again = simulator.dispatch(list(row), strategy="perimeter_walk")
        assert report.sensors_contacted == len(row)
        assert (report.messages, report.hops) == (again.messages, again.hops)


# ----------------------------------------------------------------------
# Engine integration: degraded queries
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def answered(request):
    """A (query, plain_result, boundary_sensors) triple the sampled
    engine answers through several sensors."""
    sampled_net = request.getfixturevalue("sampled_net")
    sampled_form = request.getfixturevalue("sampled_form")
    workload = request.getfixturevalue("workload")
    engine = QueryEngine(sampled_net, sampled_form)
    for span in (8.0, 7.0, 9.0, 6.0):
        half = span / 2
        box = BBox(5 - half, 5 - half, 5 + half, 5 + half)
        query = RangeQuery(box, 0.0, 0.6 * workload.horizon)
        result = engine.execute(query)
        if not result.missed and result.nodes_accessed >= 4:
            boundary = sampled_net.region_boundary(result.regions)
            sensors = sorted(sampled_net.sensors_for_boundary(boundary))
            return query, result, sensors
    pytest.skip("no answered multi-sensor query on the sampled network")


class TestEngineUnderFaults:
    def test_invalid_strategy_rejected(self, sampled_net, sampled_form):
        with pytest.raises(QueryError):
            QueryEngine(
                sampled_net, sampled_form, dispatch_strategy="carrier_owl"
            )

    @pytest.mark.parametrize("strategy", ["server_fanout", "perimeter_walk"])
    def test_idle_injector_changes_nothing(
        self, sampled_net, sampled_form, answered, strategy
    ):
        query, plain, _ = answered
        injector = FaultInjector.for_network(sampled_net, FaultConfig(seed=6))
        result = QueryEngine(
            sampled_net,
            sampled_form,
            faults=injector,
            dispatch_strategy=strategy,
        ).execute(query)
        assert result.value == plain.value
        assert result.nodes_accessed == plain.nodes_accessed
        assert result.approximate is False
        assert result.degradation is None

    def test_all_sensors_dead_degrades_fully(
        self, sampled_net, sampled_form, answered
    ):
        query, plain, sensors = answered
        injector = FaultInjector(
            FaultConfig(), sampled_net.sensors, crashed=sampled_net.sensors
        )
        result = QueryEngine(
            sampled_net, sampled_form, faults=injector
        ).execute(query)
        assert result.degradation is not None
        d = result.degradation
        assert set(d.skipped_sensors) == set(sensors)
        assert d.lost_walls > 0
        assert result.approximate is True
        assert result.nodes_accessed == 0
        assert abs(plain.value - result.value) <= d.error_bound

    def test_partial_crash_bound_contains_true_error(
        self, sampled_net, sampled_form, answered
    ):
        query, plain, sensors = answered
        injector = FaultInjector(
            FaultConfig(), sampled_net.sensors, crashed=sensors[::2]
        )
        result = QueryEngine(
            sampled_net, sampled_form, faults=injector
        ).execute(query)
        d = result.degradation
        assert d is not None
        assert set(d.skipped_sensors) <= set(sensors[::2])
        assert 0.0 <= d.coverage <= 1.0
        assert abs(plain.value - result.value) <= d.error_bound

    def test_degradation_metrics_recorded(
        self, sampled_net, sampled_form, answered
    ):
        query, _, _ = answered
        injector = FaultInjector(
            FaultConfig(), sampled_net.sensors, crashed=sampled_net.sensors
        )
        with use_registry() as registry:
            engine = QueryEngine(sampled_net, sampled_form, faults=injector)
            result = engine.execute(query)
            assert result.degradation is not None
            assert registry.value(
                "repro_query_degraded_total", strategy="perimeter_walk"
            ) == 1
            hist = registry.histogram(
                "repro_query_degradation", strategy="perimeter_walk"
            )
            assert hist.count == 1
            assert registry.value(
                "repro_query_sensors_accessed_total"
            ) == result.nodes_accessed

    def test_execute_batch_falls_back_to_sequential(
        self, sampled_net, sampled_form, answered
    ):
        query, _, sensors = answered
        queries = [query, query]
        injector = FaultInjector(
            FaultConfig(), sampled_net.sensors, crashed=sensors[:2]
        )
        engine = QueryEngine(sampled_net, sampled_form, faults=injector)
        batched = engine.execute_batch(queries)
        sequential = engine.execute_many(queries)
        assert [r.value for r in batched] == [r.value for r in sequential]
        assert [r.nodes_accessed for r in batched] == [
            r.nodes_accessed for r in sequential
        ]


# ----------------------------------------------------------------------
# Framework facade
# ----------------------------------------------------------------------
class TestFrameworkFaults:
    @pytest.fixture(scope="class")
    def framework(self, request):
        organic_domain = request.getfixturevalue("organic_domain")
        workload = request.getfixturevalue("workload")
        fw = InNetworkFramework(organic_domain)
        fw.deploy(FrameworkConfig(selector="quadtree", budget=20, seed=3))
        fw.ingest_trips(workload.trips)
        return fw

    def test_fault_injector_requires_deployment(self, organic_domain):
        fw = InNetworkFramework(organic_domain)
        with pytest.raises(QueryError):
            fw.fault_injector()

    def test_fault_injector_covers_deployed_sensors(self, framework):
        injector = framework.fault_injector(
            FaultConfig(seed=1, sensor_failure_rate=1.0)
        )
        assert injector.crashed == frozenset(framework.network.sensors)

    def test_query_with_faults_reports_degradation(self, framework):
        bounds = framework.domain.bounds
        box = BBox.from_center(
            bounds.center, bounds.width * 0.5, bounds.height * 0.5
        )
        injector = framework.fault_injector(
            FaultConfig(seed=2, sensor_failure_rate=1.0)
        )
        plain = framework.query(box, 0.0, 18 * 3600.0)
        faulty = framework.query(box, 0.0, 18 * 3600.0, faults=injector)
        if plain.missed:
            pytest.skip("demo box missed on this deployment")
        assert faulty.degradation is not None
        assert faulty.degradation.strategy == "perimeter_walk"
        assert abs(plain.value - faulty.value) <= (
            faulty.degradation.error_bound
        )

    def test_query_strategy_validated(self, framework):
        bounds = framework.domain.bounds
        box = BBox.from_center(
            bounds.center, bounds.width * 0.5, bounds.height * 0.5
        )
        with pytest.raises(QueryError):
            framework.query(
                box, 0.0, 1.0,
                faults=framework.fault_injector(),
                dispatch_strategy="smoke_signals",
            )
