"""Unit tests for the command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.blocks == 200
        assert args.selector == "quadtree"
        assert args.store == "exact"

    def test_demo_rejects_unknown_selector(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--selector", "psychic"])

    def test_city_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["city"])


class TestExecution:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "selectors" in out

    def test_city_generates_loadable_map(self, tmp_path, capsys):
        path = tmp_path / "city.json"
        assert main(["city", str(path), "--kind", "grid",
                     "--blocks", "25"]) == 0
        raw = json.loads(path.read_text())
        assert raw["nodes"] and raw["edges"]

        from repro.mobility import load_road_network

        graph = load_road_network(path, prune_dead_ends=False)
        assert graph.node_count == len(raw["nodes"])

    @pytest.mark.parametrize("kind", ["grid", "radial", "organic"])
    def test_city_kinds(self, tmp_path, kind):
        path = tmp_path / f"{kind}.json"
        assert main(["city", str(path), "--kind", kind,
                     "--blocks", "30"]) == 0
        assert path.exists()

    def test_demo_small_run(self, capsys):
        assert main(["demo", "--blocks", "60", "--trips", "200",
                     "--fraction", "0.4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "deployed:" in out
        assert "ingested:" in out
        assert "query @18:00" in out or "missed" in out

    def test_demo_with_learned_store(self, capsys):
        assert main(["demo", "--blocks", "60", "--trips", "200",
                     "--fraction", "0.4", "--store", "linear",
                     "--seed", "1"]) == 0
        assert "(linear)" in capsys.readouterr().out
