"""Unit tests for SVG charts and the FM-sketch baseline."""

import xml.etree.ElementTree as ElementTree

import numpy as np
import pytest

from repro.baseline import FMSketch, SketchBaseline
from repro.errors import ConfigurationError, QueryError
from repro.evaluation import LineChart
from repro.geometry import BBox
from repro.trajectories import distinct_visitors, plan_trip


# ----------------------------------------------------------------------
# LineChart
# ----------------------------------------------------------------------
class TestLineChart:
    def test_render_valid_svg(self, tmp_path):
        chart = LineChart(title="t", x_label="x", y_label="y")
        chart.add_series("a", [1, 2, 3], [0.5, 0.3, 0.1])
        chart.add_series("b", [1, 2, 3], [0.6, 0.4, 0.2])
        path = chart.render(tmp_path / "chart.svg")
        root = ElementTree.parse(path).getroot()
        assert root.tag.endswith("svg")
        body = path.read_text()
        assert body.count("<polyline") == 2
        assert ">a<" in body and ">b<" in body  # legend labels

    def test_log_x_axis(self, tmp_path):
        chart = LineChart(x_log=True)
        chart.add_series("s", [0.01, 0.1, 1.0], [3, 2, 1])
        path = chart.render(tmp_path / "log.svg")
        assert path.exists()

    def test_log_x_rejects_nonpositive(self):
        chart = LineChart(x_log=True)
        with pytest.raises(ConfigurationError):
            chart.add_series("s", [0.0, 1.0], [1, 2])

    def test_nan_points_dropped(self, tmp_path):
        chart = LineChart()
        chart.add_series("s", [1, 2, 3], [1.0, float("nan"), 3.0])
        body = chart.render(tmp_path / "nan.svg").read_text()
        assert body.count("<circle") == 2

    def test_all_nan_series_skipped(self, tmp_path):
        chart = LineChart()
        chart.add_series("empty", [1, 2], [float("nan")] * 2)
        chart.add_series("real", [1, 2], [1.0, 2.0])
        body = chart.render(tmp_path / "skip.svg").read_text()
        assert body.count("<polyline") == 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            LineChart().add_series("s", [1, 2], [1])

    def test_empty_chart_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            LineChart().render(tmp_path / "empty.svg")

    def test_constant_series_renders(self, tmp_path):
        chart = LineChart()
        chart.add_series("flat", [1, 2, 3], [5.0, 5.0, 5.0])
        assert chart.render(tmp_path / "flat.svg").exists()


# ----------------------------------------------------------------------
# FM sketch
# ----------------------------------------------------------------------
class TestFMSketch:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FMSketch(planes=0)
        with pytest.raises(ConfigurationError):
            FMSketch(bits=4)

    def test_empty_estimate_small(self):
        assert FMSketch().estimate() < 2.0

    def test_duplicates_collapse(self):
        sketch = FMSketch(planes=32)
        for _ in range(100):
            sketch.add("same-object")
        assert sketch.estimate() < 5.0

    def test_estimate_scales_with_cardinality(self):
        small = FMSketch(planes=32)
        large = FMSketch(planes=32)
        for i in range(20):
            small.add(i)
        for i in range(2000):
            large.add(i)
        assert large.estimate() > 5 * small.estimate()

    def test_estimate_accuracy(self):
        sketch = FMSketch(planes=64)
        n = 500
        for i in range(n):
            sketch.add(("obj", i))
        assert sketch.estimate() == pytest.approx(n, rel=0.5)

    def test_merge_is_union(self):
        left = FMSketch(planes=32)
        right = FMSketch(planes=32)
        for i in range(100):
            left.add(i)
            right.add(i + 50)  # 50 overlap
        merged = left | right
        assert merged.estimate() >= max(left.estimate(), right.estimate())

    def test_merge_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            FMSketch(planes=8).merge(FMSketch(planes=16))

    def test_storage(self):
        assert FMSketch(planes=16).storage_bytes == 128


# ----------------------------------------------------------------------
# Sketch baseline
# ----------------------------------------------------------------------
class TestSketchBaseline:
    def test_validation(self, grid_domain):
        with pytest.raises(ConfigurationError):
            SketchBaseline(grid_domain, horizon=0)
        with pytest.raises(ConfigurationError):
            SketchBaseline(grid_domain, horizon=100, time_bins=0)

    def test_query_before_ingest(self, grid_domain):
        baseline = SketchBaseline(grid_domain, horizon=100)
        with pytest.raises(QueryError):
            baseline.distinct_count(BBox(0, 0, 5, 5), 0, 50)

    def test_distinct_count_tracks_ground_truth(
        self, organic_domain, workload
    ):
        baseline = SketchBaseline(
            organic_domain, horizon=workload.horizon,
            time_bins=24, planes=48,
        )
        baseline.ingest_trips(workload.trips)
        box = BBox(2, 2, 8, 8)
        t1, t2 = 0.2 * workload.horizon, 0.6 * workload.horizon
        estimate = baseline.distinct_count(box, t1, t2)
        region = organic_domain.junctions_in_bbox(box)
        truth = distinct_visitors(workload.trips, region, t1, t2)
        if truth >= 20:
            assert estimate == pytest.approx(truth, rel=0.8)

    def test_pass_through_objects_counted_once(self, grid_domain):
        """The sketch's selling point: transiting objects are distinct-
        counted once even though they enter several cells."""
        a = grid_domain.nearest_junction((0, 0))
        b = grid_domain.nearest_junction((10, 0))
        trips = [
            plan_trip(grid_domain, i, a, b, 100.0 * i, 0.01, 50.0)
            for i in range(30)
        ]
        baseline = SketchBaseline(
            grid_domain, horizon=5000.0, time_bins=8, planes=64
        )
        baseline.ingest_trips(trips)
        corridor = BBox(0, -0.5, 10, 0.5)
        estimate = baseline.distinct_count(corridor, 0.0, 5000.0)
        assert estimate == pytest.approx(30, rel=0.6)

    def test_empty_region_zero(self, grid_domain):
        baseline = SketchBaseline(grid_domain, horizon=100)
        baseline.ingest_trips([])
        assert baseline.distinct_count(BBox(0, 0, 0.1, 0.1), 0, 50) == 0.0

    def test_inverted_interval_rejected(self, grid_domain):
        baseline = SketchBaseline(grid_domain, horizon=100)
        baseline.ingest_trips([])
        with pytest.raises(QueryError):
            baseline.distinct_count(BBox(0, 0, 5, 5), 50, 10)

    def test_storage_accounting(self, grid_domain):
        a = grid_domain.nearest_junction((0, 0))
        b = grid_domain.nearest_junction((5, 5))
        trips = [plan_trip(grid_domain, 0, a, b, 0.0, 0.01, 50.0)]
        baseline = SketchBaseline(grid_domain, horizon=5000.0, planes=16)
        baseline.ingest_trips(trips)
        assert baseline.storage_bytes == baseline.sketch_count * 128
