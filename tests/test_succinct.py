"""Succinct storage tier: codec round trips, exact equivalence, sketch.

Covers the delta/bit-packed codec corners (empty edges, single-event
edges, duplicate timestamps, width-0 blocks), the exactness contract
(compressed answers byte-identical to an uncompressed compiled form
built from the same quantized columns, through the direct integration
API, the sharded scatter path and streaming compaction points),
append-merge re-encoding with generation/digest stability, compressed
shared-memory round trips, the error-bounded sketch fast path
(containment, engine gating, fallback, metrics) and the unified
storage-report schema across every store.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_query_planner import _battery, _deployment, _key

from repro.core import FrameworkConfig, InNetworkFramework
from repro.errors import ConfigurationError
from repro.forms import CompiledTrackingForm, CompressedTrackingForm
from repro.forms.sketch import EdgeCountSketch
from repro.forms.succinct import (
    _pack_deltas,
    _unpack_deltas,
    quantize_times,
)
from repro.obs import use_registry
from repro.query import QueryEngine, RangeQuery, ShardedQueryEngine
from repro.shm import destroy_segment
from repro.stream import StreamingEventStore
from repro.trajectories import (
    CrossingEvent,
    EventColumns,
    WorkloadConfig,
    generate_workload,
)

HORIZON = 86400.0
TICK_BITS = 10


# ----------------------------------------------------------------------
# Codec unit round trips
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize("width", [1, 3, 8, 17, 33])
    def test_pack_unpack_round_trip(self, width):
        rng = np.random.default_rng(width)
        deltas = rng.integers(0, 2 ** width, size=100, dtype=np.int64)
        packed = _pack_deltas(deltas, width)
        assert np.array_equal(_unpack_deltas(packed, 100, width), deltas)

    def test_width_zero_is_empty(self):
        deltas = np.zeros(40, dtype=np.int64)
        assert _pack_deltas(deltas, 0).size == 0
        assert np.array_equal(
            _unpack_deltas(np.empty(0, np.uint8), 40, 0), deltas
        )

    def test_quantize_idempotent_monotone_exact(self):
        rng = np.random.default_rng(5)
        t = np.sort(rng.uniform(0.0, 1e5, 500))
        q = quantize_times(t, TICK_BITS)
        assert np.array_equal(quantize_times(q, TICK_BITS), q)
        assert np.all(np.diff(q) >= 0.0)
        scale = float(2.0 ** TICK_BITS)
        ticks = np.rint(q * scale)
        assert np.array_equal(ticks / scale, q)


# ----------------------------------------------------------------------
# Compressed form vs plain compiled form (same quantized columns)
# ----------------------------------------------------------------------
def _random_columns(interner, n_events, seed, duplicates=False):
    """Columnar events over a real interner, with deliberate corners:
    edge 0 never used (empty), one single-event edge, optional heavy
    timestamp duplication."""
    rng = np.random.default_rng(seed)
    n_ids = len(interner)
    edge_id = rng.integers(1, n_ids, size=n_events).astype(np.int32)
    edge_id[0] = n_ids - 1  # guaranteed single-event edge candidate
    direction = rng.integers(0, 2, size=n_events).astype(np.int8)
    if duplicates:
        t = np.sort(
            rng.choice(np.linspace(0.0, HORIZON, 97), size=n_events)
        )
    else:
        t = np.sort(rng.uniform(0.0, HORIZON, size=n_events))
    t = quantize_times(t, TICK_BITS)
    return EventColumns(
        interner=interner, edge_id=edge_id, direction=direction, t=t
    )


@pytest.fixture(scope="module")
def forms_pair():
    """(plain, compressed) built from identical quantized columns."""
    network, _, workload = _deployment("organic", 12, seed=37)
    domain = network.domain
    columns = EventColumns.from_events(
        domain, workload.events(domain)
    ).quantized(TICK_BITS)
    plain = CompiledTrackingForm(
        columns.interner, columns.edge_id, columns.direction, columns.t
    )
    compressed = CompressedTrackingForm(
        columns.interner,
        columns.edge_id,
        columns.direction,
        columns.t,
        tick_bits=TICK_BITS,
    )
    return network, columns, plain, compressed


class TestCompressedEquivalence:
    def test_every_segment_identical(self, forms_pair):
        _, _, plain, compressed = forms_pair
        assert plain.total_events == compressed.total_events
        for d in (0, 1):
            n = len(plain._offsets[d]) - 1
            for eid in range(n):
                assert np.array_equal(
                    plain._segment_ids(eid, d),
                    compressed._segment_ids(eid, d),
                ), (eid, d)

    def test_to_columns_round_trip(self, forms_pair):
        _, columns, _, compressed = forms_pair
        out = compressed.to_columns(columns.interner)
        back = CompressedTrackingForm(
            out.interner, out.edge_id, out.direction, out.t,
            tick_bits=TICK_BITS,
        )
        assert back.total_events == compressed.total_events
        for d in (0, 1):
            assert np.array_equal(
                back._direction_values(d),
                compressed._direction_values(d),
            )

    def test_random_chain_integration_identical(self, forms_pair):
        _, _, plain, compressed = forms_pair
        rng = np.random.default_rng(11)
        n_ids = len(plain._offsets[0]) - 1
        for _ in range(60):
            size = int(rng.integers(1, 12))
            wall_ids = rng.integers(0, n_ids, size=size).astype(np.int64)
            signs = rng.choice([-1, 1], size=size).astype(np.int64)
            t1, t2 = np.sort(rng.uniform(0.0, HORIZON, 2))
            assert plain.integrate_until_ids(wall_ids, signs, t2) == \
                compressed.integrate_until_ids(wall_ids, signs, t2)
            assert plain.integrate_between_ids(wall_ids, signs, t1, t2) == \
                compressed.integrate_between_ids(wall_ids, signs, t1, t2)

    def test_empty_single_and_duplicate_edges(self, forms_pair):
        network, *_ = forms_pair
        interner = network.domain.edge_interner
        for dup in (False, True):
            columns = _random_columns(interner, 400, seed=3, duplicates=dup)
            plain = CompiledTrackingForm(
                interner, columns.edge_id, columns.direction, columns.t
            )
            compressed = CompressedTrackingForm(
                interner, columns.edge_id, columns.direction, columns.t,
                tick_bits=TICK_BITS,
            )
            for d in (0, 1):
                assert np.array_equal(
                    plain._direction_values(d),
                    compressed._direction_values(d),
                )
            # Edge 0 is never referenced: empty in both directions.
            assert compressed._segment_ids(0, 0).size == 0
            assert compressed._segment_ids(0, 1).size == 0

    def test_all_duplicate_timestamps_pack_to_zero_payload(self, forms_pair):
        network, *_ = forms_pair
        interner = network.domain.edge_interner
        n = 200
        columns = EventColumns(
            interner=interner,
            edge_id=np.full(n, 1, dtype=np.int32),
            direction=np.zeros(n, dtype=np.int8),
            t=np.full(n, 1024.0),
        )
        form = CompressedTrackingForm(
            interner, columns.edge_id, columns.direction, columns.t,
            tick_bits=TICK_BITS,
        )
        assert form.storage_report()["components"]["payload"] == 0
        assert np.array_equal(form._segment_ids(1, 0), columns.t)

    def test_append_merge_non_monotone(self, forms_pair):
        """Appends earlier than stored events force a true re-sort
        merge; compressed re-encoding must match the plain merge."""
        network, columns, *_ = forms_pair
        interner = network.domain.edge_interner
        base = _random_columns(interner, 500, seed=8)
        plain = CompiledTrackingForm(
            interner, base.edge_id, base.direction, base.t
        )
        compressed = CompressedTrackingForm(
            interner, base.edge_id, base.direction, base.t,
            tick_bits=TICK_BITS,
        )
        rng = np.random.default_rng(9)
        extra = _random_columns(interner, 200, seed=10)
        # Shift half the appended events *before* the existing ones.
        t = extra.t.copy()
        t[: len(t) // 2] = quantize_times(
            rng.uniform(0.0, HORIZON * 0.2, len(t) // 2), TICK_BITS
        )
        assert plain.generation == compressed.generation == 0
        plain.append_events(extra.edge_id, extra.direction, t)
        compressed.append_events(extra.edge_id, extra.direction, t)
        assert plain.generation == compressed.generation == 1
        for d in (0, 1):
            assert np.array_equal(
                plain._direction_values(d),
                compressed._direction_values(d),
            )

    def test_digest_stable_across_widths_and_generations(self, forms_pair):
        """compile_boundary_ids canonicalises chain dtypes, so the
        same chain compiles to one cache entry regardless of caller
        widths — and an append invalidates it via the generation."""
        _, _, _, compressed = forms_pair
        wall64 = np.array([3, 7, 11], dtype=np.int64)
        wall32 = wall64.astype(np.int32)
        signs64 = np.array([1, -1, 1], dtype=np.int64)
        signs8 = signs64.astype(np.int8)
        before = compressed.boundary_cache_len
        c1 = compressed.compile_boundary_ids(wall64, signs64)
        c2 = compressed.compile_boundary_ids(wall32, signs8)
        assert compressed.boundary_cache_len == before + 1
        assert np.array_equal(c1[0], c2[0])
        assert np.array_equal(c1[1], c2[1])

    def test_shm_round_trip(self, forms_pair):
        _, _, plain, compressed = forms_pair
        handle, descriptor = compressed.shm_pack(hint="succinct-test")
        try:
            assert descriptor["form"] == "compressed"
            attached = CompressedTrackingForm.shm_attach(
                descriptor, compressed._interner
            )
            assert attached.tick_bits == TICK_BITS
            assert attached.total_events == compressed.total_events
            rng = np.random.default_rng(13)
            n_ids = len(plain._offsets[0]) - 1
            for _ in range(20):
                wall_ids = rng.integers(0, n_ids, size=6).astype(np.int64)
                signs = rng.choice([-1, 1], size=6).astype(np.int64)
                t = float(rng.uniform(0.0, HORIZON))
                assert attached.integrate_until_ids(
                    wall_ids, signs, t
                ) == plain.integrate_until_ids(wall_ids, signs, t)
            del attached
        finally:
            destroy_segment(handle)

    def test_compression_beats_plain_storage(self, forms_pair):
        _, _, plain, compressed = forms_pair
        plain_bytes = plain.storage_report()["total_bytes"]
        comp_bytes = compressed.storage_report()["total_bytes"]
        # The ≥4× headline is measured at benchmark scale
        # (benchmarks/bench_storage_compression.py); this small
        # fixture just has to show a real reduction.
        assert comp_bytes < plain_bytes / 2


# ----------------------------------------------------------------------
# Planner equivalence grid (compiled + sharded + static_eval)
# ----------------------------------------------------------------------
class TestPlannerEquivalence:
    @pytest.mark.parametrize("static_eval", ["end", "start", "min"])
    def test_compiled_planner_field_identical(self, forms_pair, static_eval):
        network, _, plain, compressed = forms_pair
        battery = _battery(network.domain, HORIZON, seed=61)
        reference = QueryEngine(
            network, plain, planner="compiled", static_eval=static_eval
        ).execute_batch(battery)
        got = QueryEngine(
            network, compressed, planner="compiled", static_eval=static_eval
        ).execute_batch(battery)
        assert [_key(r) for r in got] == [_key(r) for r in reference]

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_planner_field_identical(self, forms_pair, shards):
        network, columns, plain, _ = forms_pair
        battery = _battery(network.domain, HORIZON, seed=61)
        reference = QueryEngine(
            network, plain, planner="compiled"
        ).execute_batch(battery)
        with ShardedQueryEngine(
            network, columns, shards=shards,
            compress=True, tick_bits=TICK_BITS,
        ) as engine:
            results = engine.execute_batch(battery)
        assert [_key(r) for r in results] == [_key(r) for r in reference]

    def test_streaming_compaction_points(self, forms_pair):
        """Compressed and plain streaming stores agree at every
        compaction point (tail-only, mixed, multi-block)."""
        network, columns, *_ = forms_pair
        interner = network.domain.edge_interner
        plain = StreamingEventStore(network, compact_every=400)
        comp = StreamingEventStore(
            network, compact_every=400, compress=True, tick_bits=TICK_BITS
        )
        battery = _battery(network.domain, HORIZON, seed=29, n_boxes=6)
        events = [
            CrossingEvent(*interner.edge(int(eid))[:: 1 if d == 0 else -1], t)
            for eid, d, t in zip(
                columns.edge_id[:1500],
                columns.direction[:1500],
                columns.t[:1500],
            )
        ]
        for start in range(0, len(events), 300):
            window = events[start:start + 300]
            plain.append_events(window)
            comp.append_events(window)
            reference = QueryEngine(network, plain).execute_batch(battery)
            got = QueryEngine(network, comp).execute_batch(battery)
            assert [_key(r) for r in got] == [_key(r) for r in reference]
        # Multiple compactions ran, so the grid covered tail-only,
        # mixed and post-merge states (merges fold into one block).
        assert comp.compactions >= 1
        assert comp.block_count >= 1


# ----------------------------------------------------------------------
# Framework threading
# ----------------------------------------------------------------------
class TestFrameworkCompressed:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(compress=True, store="linear")
        with pytest.raises(ConfigurationError):
            FrameworkConfig(tick_bits=21)
        with pytest.raises(ConfigurationError):
            FrameworkConfig(sketch_bins=8, streaming=True)
        with pytest.raises(ConfigurationError):
            FrameworkConfig(sketch_bins=8, store="histogram")

    def test_framework_compressed_matches_plain(self, organic_domain,
                                                workload):
        results = {}
        for compress in (False, True):
            fw = InNetworkFramework(organic_domain)
            fw.deploy(
                FrameworkConfig(
                    budget=20, seed=3, compress=compress,
                    tick_bits=TICK_BITS,
                )
            )
            fw.ingest_trips(workload.trips)
            battery = _battery(organic_domain, HORIZON, seed=47, n_boxes=8)
            engine = fw.engine()
            results[compress] = [
                _key(r) for r in engine.execute_many(battery)
            ]
            if compress:
                report = fw.storage_report()
                assert report["stores"][0]["store"] == (
                    "CompressedTrackingForm"
                )
                assert fw.storage_bytes == (
                    report["stores"][0]["total_bytes"]
                )
            fw.close()
        assert results[True] == results[False]


# ----------------------------------------------------------------------
# Sketch tier
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sketch_deployment():
    network, _, workload = _deployment("organic", 12, seed=37)
    domain = network.domain
    columns = EventColumns.from_events(domain, workload.events(domain))
    observed = network.observed_columns(columns)
    form = network.build_form(columns)
    sketch = EdgeCountSketch.from_columns(observed, bins=64)
    return network, form, sketch


class TestSketch:
    def test_bound_contains_exact(self, sketch_deployment):
        network, form, sketch = sketch_deployment
        exact_engine = QueryEngine(network, form, planner="compiled")
        sketch_engine = QueryEngine(
            network, form, planner="auto", sketch=sketch
        )
        battery = _battery(network.domain, HORIZON, seed=71, n_boxes=30)
        contained = total = 0
        for query in battery:
            exact = exact_engine.execute(query)
            approx = sketch_engine.execute(
                RangeQuery(
                    query.box, query.t1, query.t2, kind=query.kind,
                    bound=query.bound, max_error=float("inf"),
                )
            )
            if exact.missed:
                assert approx.missed
                continue
            total += 1
            assert approx.approximate
            assert approx.degradation is not None
            assert approx.degradation.strategy == "sketch"
            assert approx.nodes_accessed == 0
            if (
                abs(approx.value - exact.value)
                <= approx.degradation.error_bound
            ):
                contained += 1
        assert total > 30
        # Acceptance: bound contains the exact answer in >= 95% of
        # queries.  The bound is worst-case by construction, so this
        # should be 100%.
        assert contained / total >= 0.95

    def test_tight_tolerance_falls_back_exact(self, sketch_deployment):
        network, form, sketch = sketch_deployment
        with use_registry() as registry:
            engine = QueryEngine(
                network, form, planner="auto", sketch=sketch
            )
            battery = _battery(network.domain, HORIZON, seed=73, n_boxes=5)
            exact = QueryEngine(network, form, planner="compiled")
            for query in battery:
                tight = RangeQuery(
                    query.box, query.t1, query.t2, kind=query.kind,
                    bound=query.bound, max_error=0.0,
                )
                got = engine.execute(tight)
                want = exact.execute(query)
                if got.degradation is None:
                    assert got.value == want.value
                    assert not got.approximate
            hits = registry.value(
                "repro_sketch_queries_total", outcome="hit"
            )
            fallbacks = registry.value(
                "repro_sketch_queries_total", outcome="fallback"
            )
            assert hits + fallbacks > 0

    def test_no_max_error_means_exact(self, sketch_deployment):
        network, form, sketch = sketch_deployment
        engine = QueryEngine(network, form, planner="auto", sketch=sketch)
        exact = QueryEngine(network, form, planner="compiled")
        query = _battery(network.domain, HORIZON, seed=79, n_boxes=1)[0]
        assert engine.execute(query).value == exact.execute(query).value
        assert not engine.execute(query).approximate

    def test_non_auto_planner_ignores_sketch(self, sketch_deployment):
        network, form, sketch = sketch_deployment
        engine = QueryEngine(
            network, form, planner="compiled", sketch=sketch
        )
        query = _battery(network.domain, HORIZON, seed=83, n_boxes=1)[0]
        loose = RangeQuery(
            query.box, query.t1, query.t2, kind=query.kind,
            bound=query.bound, max_error=float("inf"),
        )
        assert not engine.execute(loose).approximate

    def test_batch_path_serves_sketch(self, sketch_deployment):
        network, form, sketch = sketch_deployment
        engine = QueryEngine(network, form, planner="auto", sketch=sketch)
        base = _battery(network.domain, HORIZON, seed=89, n_boxes=4)
        loose = [
            RangeQuery(
                q.box, q.t1, q.t2, kind=q.kind, bound=q.bound,
                max_error=float("inf"),
            )
            for q in base
        ]
        exact = QueryEngine(network, form, planner="compiled")
        got = engine.execute_batch(loose)
        want = exact.execute_batch(base)
        for g, w in zip(got, want):
            assert g.missed == w.missed
            if not g.missed:
                assert g.approximate
                assert abs(g.value - w.value) <= g.degradation.error_bound

    def test_max_error_validation(self):
        from repro.geometry import BBox

        with pytest.raises(Exception):
            RangeQuery(
                BBox(0, 0, 1, 1), 0.0, 1.0, max_error=-1.0
            )


# ----------------------------------------------------------------------
# Unified storage reports
# ----------------------------------------------------------------------
class TestStorageReports:
    REQUIRED = ("store", "events", "total_bytes", "components")

    def _check(self, report):
        for key in self.REQUIRED:
            assert key in report
        assert report["total_bytes"] == sum(
            report["components"].values()
        )
        assert all(
            isinstance(v, int) and v >= 0
            for v in report["components"].values()
        )

    def test_all_stores_share_the_schema(self, forms_pair, full_form):
        network, columns, plain, compressed = forms_pair
        self._check(plain.storage_report())
        self._check(compressed.storage_report())
        self._check(full_form.storage_report())
        streaming = StreamingEventStore(
            network, compact_every=100,
            compress=True, tick_bits=TICK_BITS,
        )
        self._check(streaming.storage_report())
        from repro.models import LinearModel, ModeledCountStore

        modeled = ModeledCountStore.fit(full_form, LinearModel)
        self._check(modeled.storage_report())
        sketch = EdgeCountSketch.from_columns(columns, bins=16)
        self._check(sketch.storage_report())

    def test_dashboard_storage_panel(self, forms_pair):
        _, _, _, compressed = forms_pair
        from repro.obs import (
            AlertLog,
            MetricsRegistry,
            TimeSeriesRecorder,
            default_slos,
            evaluate_slos,
            fleet_health,
        )
        from repro.obs.dashboard import render_dashboard

        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry)
        recorder.sample()
        statuses = evaluate_slos(default_slos(), recorder)
        health = fleet_health(registry)
        storage = {
            "stores": [compressed.storage_report()],
            "total_bytes": compressed.storage_report()["total_bytes"],
        }
        page = render_dashboard(
            title="t", meta={}, recorder=recorder, statuses=statuses,
            alerts=AlertLog().alerts, health=health, storage=storage,
        )
        assert "Storage" in page
        assert "payload" in page
