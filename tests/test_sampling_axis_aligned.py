"""Unit tests for axis-aligned decomposition networks (§3.1.1)."""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.geometry import BBox
from repro.mobility import EXT
from repro.sampling import (
    calibrate_grid_to_walls,
    grid_decomposition_network,
    kd_decomposition_network,
)
from repro.trajectories import occupancy_count


class TestGridDecomposition:
    def test_parameters_validated(self, grid_domain):
        with pytest.raises(SelectionError):
            grid_decomposition_network(grid_domain, 0, 3)

    def test_single_cell_has_geofence_only(self, grid_domain):
        network = grid_decomposition_network(grid_domain, 1, 1)
        # All walls are EXT geofence edges; one interior region.
        assert all(EXT in wall for wall in network.walls)
        assert network.region_count == 1

    def test_cells_partition_junctions(self, grid_domain):
        network = grid_decomposition_network(grid_domain, 3, 3)
        total = set()
        for region in network.region_ids:
            junctions = network.region_junctions(region)
            assert not (total & junctions)
            total |= junctions
        assert total == set(grid_domain.junctions)
        # EXT region contains no junction: the geofence closes the rim.
        assert network.region_junctions(network.ext_region) == set()

    def test_more_cells_more_walls(self, organic_domain):
        coarse = grid_decomposition_network(organic_domain, 2, 2)
        fine = grid_decomposition_network(organic_domain, 6, 6)
        assert len(fine.walls) > len(coarse.walls)
        assert fine.region_count >= coarse.region_count

    def test_counts_exact_on_cells(
        self, organic_domain, workload, events
    ):
        network = grid_decomposition_network(organic_domain, 4, 4)
        form = network.build_form(events)
        region = network.region_ids[0]
        junctions = network.region_junctions(region)
        boundary = network.region_boundary([region])
        t = 0.5 * workload.horizon
        assert form.integrate_until(boundary, t) == occupancy_count(
            workload.trips, junctions, t
        )

    def test_sensors_nonempty(self, organic_domain):
        network = grid_decomposition_network(organic_domain, 3, 3)
        assert network.sensors


class TestKdDecomposition:
    def test_parameters_validated(self, grid_domain):
        with pytest.raises(SelectionError):
            kd_decomposition_network(grid_domain, 0)

    def test_leaf_budget_respected(self, organic_domain):
        network = kd_decomposition_network(organic_domain, leaves=8)
        # Regions = leaves (some may merge if a leaf is disconnected,
        # producing more, never fewer, than... split pieces). At least
        # the partition is non-trivial.
        assert network.region_count >= 4

    def test_balanced_population(self, organic_domain):
        network = kd_decomposition_network(organic_domain, leaves=8)
        sizes = [
            len(network.region_junctions(r)) for r in network.region_ids
        ]
        # Median splits: no region dwarfs the rest.
        assert max(sizes) <= 0.6 * organic_domain.junction_count


class TestCalibration:
    def test_calibrate_grid_to_walls(self, organic_domain):
        rows, cols = calibrate_grid_to_walls(organic_domain, 150)
        network = grid_decomposition_network(organic_domain, rows, cols)
        assert abs(len(network.walls) - 150) <= 120

    def test_invalid_target(self, organic_domain):
        with pytest.raises(SelectionError):
            calibrate_grid_to_walls(organic_domain, 0)


class TestDeadSpaceEffect:
    def test_planar_sampling_contacts_fewer_sensors(
        self, organic_domain, sampled_net, sampled_form, events, workload
    ):
        """The §3.1.1 claim at test scale: at a comparable wall budget
        the placement-based planar graph needs fewer communication
        sensors per query than a grid decomposition."""
        from repro.query import QueryEngine, RangeQuery
        from repro.sampling import calibrate_grid_to_walls

        shape = calibrate_grid_to_walls(
            organic_domain, len(sampled_net.walls)
        )
        grid_net = grid_decomposition_network(organic_domain, *shape)
        grid_form = grid_net.build_form(events)

        box = BBox(1.5, 1.5, 8.5, 8.5)
        query = RangeQuery(box, 0, 0.5 * workload.horizon)
        planar = QueryEngine(sampled_net, sampled_form).execute(query)
        gridded = QueryEngine(grid_net, grid_form).execute(query)
        if planar.missed or gridded.missed:
            pytest.skip("budget too small at this seed")
        assert planar.nodes_accessed <= gridded.nodes_accessed
