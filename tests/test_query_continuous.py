"""Unit tests for continuous (standing) query monitoring."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.geometry import BBox
from repro.query import ContinuousCountMonitor
from repro.trajectories import occupancy_count


@pytest.fixture()
def monitor(sampled_net):
    return ContinuousCountMonitor(sampled_net)


class TestRegistration:
    def test_add_region(self, monitor):
        state = monitor.add_region("centre", BBox(1.5, 1.5, 8.5, 8.5))
        assert state.regions
        assert monitor.count("centre") == 0.0
        assert "centre" in monitor.region_names

    def test_duplicate_name_rejected(self, monitor):
        monitor.add_region("a", BBox(1.5, 1.5, 8.5, 8.5))
        with pytest.raises(QueryError):
            monitor.add_region("a", BBox(2, 2, 8, 8))

    def test_missing_region_rejected(self, monitor):
        with pytest.raises(QueryError):
            monitor.add_region("tiny", BBox(0.0, 0.0, 0.1, 0.1))

    def test_unknown_count_rejected(self, monitor):
        with pytest.raises(QueryError):
            monitor.count("ghost")

    def test_remove_region(self, monitor):
        monitor.add_region("a", BBox(1.5, 1.5, 8.5, 8.5))
        monitor.remove_region("a")
        assert monitor.region_names == []
        assert monitor.monitored_walls == 0

    def test_remove_unknown_is_noop(self, monitor):
        monitor.remove_region("ghost")


class TestStreaming:
    def test_live_count_matches_batch_query(
        self, organic_domain, sampled_net, sampled_form, events, workload
    ):
        monitor = ContinuousCountMonitor(sampled_net)
        box = BBox(1.5, 1.5, 8.5, 8.5)
        state = monitor.add_region("centre", box)

        cut = workload.horizon * 0.5
        monitor.observe_stream(e for e in events if e.t <= cut)

        # The live count equals Theorem 4.2's integral at the cut time.
        boundary = sampled_net.region_boundary(state.regions)
        batch = sampled_form.integrate_until(boundary, cut)
        assert state.count == batch

        # ... and equals exact occupancy of the covered junctions.
        covered = set()
        for region in state.regions:
            covered |= sampled_net.region_junctions(region)
        assert state.count == occupancy_count(workload.trips, covered, cut)

    def test_multiple_regions_independent(
        self, sampled_net, events, workload
    ):
        monitor = ContinuousCountMonitor(sampled_net)
        monitor.add_region("big", BBox(1.0, 1.0, 9.0, 9.0))
        monitor.add_region("small", BBox(3.0, 3.0, 7.5, 7.5))
        monitor.observe_stream(events)
        counts = monitor.counts()
        assert set(counts) == {"big", "small"}
        assert counts["big"] >= counts["small"] - 1e-9

    def test_entries_and_exits_tracked(self, sampled_net, events):
        monitor = ContinuousCountMonitor(sampled_net)
        state = monitor.add_region("centre", BBox(1.5, 1.5, 8.5, 8.5))
        monitor.observe_stream(events)
        assert state.entries > 0
        assert state.exits > 0
        assert state.count == state.entries - state.exits
        assert state.last_event_time is not None

    def test_history_checkpoints(self, sampled_net, events):
        monitor = ContinuousCountMonitor(sampled_net, keep_history=True)
        state = monitor.add_region("centre", BBox(1.5, 1.5, 8.5, 8.5))
        monitor.observe_stream(events[:2000])
        assert len(state.history) == state.entries + state.exits
        times = [t for t, _ in state.history]
        assert times == sorted(times)

    def test_irrelevant_events_ignored(self, sampled_net, events):
        monitor = ContinuousCountMonitor(sampled_net)
        state = monitor.add_region("centre", BBox(3.0, 3.0, 7.5, 7.5))
        relevant = state.entries + state.exits
        monitor.observe_stream(events[:500])
        processed = state.entries + state.exits
        # Most of the first 500 events do not touch this boundary.
        assert processed < 500
