"""Quickstart: deploy, ingest, query.

Builds a small synthetic city, deploys an in-network sensing
configuration on 15% of the city blocks, streams a day of anonymous
trip crossings through it and answers spatiotemporal range count
queries — comparing the approximate in-network answers against the
exact counts from the full (unsampled) sensing graph.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FrameworkConfig, InNetworkFramework
from repro.geometry import BBox
from repro.mobility import organic_city
from repro.trajectories import WorkloadConfig, generate_workload


def main() -> None:
    # 1. A synthetic city: planar road network with ~200 blocks.
    road = organic_city(blocks=200, rng=np.random.default_rng(7))
    framework = InNetworkFramework.from_road_graph(road)
    domain = framework.domain
    print(f"City: {domain.junction_count} junctions, "
          f"{domain.graph.edge_count} road segments, "
          f"{domain.block_count} blocks")

    # 2. Deploy communication sensors on 25% of the blocks, connected
    #    by Delaunay triangulation and routed through the sensing dual.
    budget = max(domain.block_count * 25 // 100, 2)
    network = framework.deploy(
        FrameworkConfig(selector="quadtree", budget=budget, seed=1)
    )
    print(f"Deployed {len(network.sensors)} sensors "
          f"({network.size_fraction:.1%} of blocks), "
          f"{len(network.walls)} monitored road edges, "
          f"{network.region_count} sensing regions")

    # 3. One day of anonymous traffic (4k trips, rush-hour peaks).
    workload = generate_workload(
        domain,
        WorkloadConfig(n_trips=4000, horizon_days=1.0,
                       mean_dwell=3600.0, seed=11),
    )
    ingested = framework.ingest_trips(workload.trips)
    print(f"Ingested {ingested} crossing events "
          f"(no object identifiers stored)")

    # 4. Query: how many objects are inside the city centre at 18:00?
    centre = BBox.from_center(domain.bounds.center, 5.0, 5.0)
    t_evening = 18 * 3600.0
    approx = framework.query(centre, 0.0, t_evening)
    exact = framework.query_exact(centre, 0.0, t_evening)
    print("\nStatic count in the city centre at 18:00")
    if approx.missed:
        print("  lower-bound estimate : miss "
              "(no sensing region fits inside the range)")
    else:
        print(f"  lower-bound estimate : {approx.value:.0f}")
        print(f"  sensors contacted    : {approx.nodes_accessed} "
              f"(vs {exact.nodes_accessed} flooded on the full graph)")
    print(f"  exact (full graph)   : {exact.value:.0f}")

    upper = framework.query(centre, 0.0, t_evening, bound="upper")
    if not upper.missed:
        print(f"  upper-bound estimate : {upper.value:.0f}")

    # 5. Transient query: net change during the evening rush.
    transient = framework.query(
        centre, 17 * 3600.0, 19 * 3600.0, kind="transient"
    )
    print("\nNet change 17:00-19:00 (positive = net inflow):"
          f" {transient.value:+.0f}")


if __name__ == "__main__":
    main()
