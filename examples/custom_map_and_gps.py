"""Bring-your-own-data: custom road map + raw GPS traces.

Shows the full §4.2 / §5.1.3 ingestion path a real deployment would
use: load a road network from the JSON map interchange format (with
class filtering and flyover planarization), map-match a CSV of raw GPS
fixes onto it, and run the in-network pipeline on the result.

The script first *writes* a small map file and a synthetic GPS CSV so
it is self-contained; with your own files, start at step 3.

Run:  python examples/custom_map_and_gps.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import FrameworkConfig, InNetworkFramework
from repro.geometry import BBox
from repro.mobility import MobilityDomain, load_road_network, organic_city, save_road_network
from repro.trajectories import (
    WorkloadConfig,
    export_trips_as_gps,
    generate_workload,
    load_gps_trips,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-custom-"))

    # 1. Write a map file (stand-in for your own city export).
    map_path = workdir / "my_city.json"
    save_road_network(
        organic_city(blocks=150, rng=np.random.default_rng(33)), map_path
    )
    print(f"wrote sample map to {map_path}")

    # 2. Write a GPS CSV (stand-in for your fleet's raw traces).
    staging_domain = MobilityDomain(
        load_road_network(map_path, prune_dead_ends=False)
    )
    staged = generate_workload(
        staging_domain,
        WorkloadConfig(n_trips=1500, horizon_days=1.0,
                       mean_dwell=3600.0, seed=3),
    )
    gps_path = workdir / "fleet.csv"
    rows = export_trips_as_gps(
        staging_domain, staged.trips, gps_path,
        jitter=0.05, rng=np.random.default_rng(4),
    )
    print(f"wrote {rows} noisy GPS fixes to {gps_path}")

    # 3. The actual user pipeline: load map, match GPS, deploy, query.
    road = load_road_network(map_path)  # filter + planarize + prune
    framework = InNetworkFramework.from_road_graph(road)
    domain = framework.domain
    print(f"loaded city: {domain.junction_count} junctions, "
          f"{domain.block_count} blocks")

    trips = load_gps_trips(domain, gps_path)
    print(f"map-matched {len(trips)} trips from raw GPS")

    framework.deploy(
        FrameworkConfig(selector="quadtree",
                        budget=max(domain.block_count // 4, 2), seed=5)
    )
    framework.ingest_trips(trips)

    centre = BBox.from_center(domain.bounds.center, 5.0, 5.0)
    for hour in (9, 18):
        approx = framework.query(centre, 0.0, hour * 3600.0)
        exact = framework.query_exact(centre, 0.0, hour * 3600.0)
        status = ("miss" if approx.missed
                  else f"{approx.value:.0f} (exact {exact.value:.0f})")
        print(f"  occupancy of the centre at {hour:02d}:00 -> {status}")

    print(f"\nartifacts kept under {workdir}")


if __name__ == "__main__":
    main()
