"""Cell-tower load monitoring (the paper's Fig. 1 scenario).

A mobile operator needs the number of distinct users inside each
tower's service area over arbitrary time windows — without any party
ever holding a user's full movement history.  Each tower's service
area is a spatial range; queries are dispatched only to the sensors on
the area's perimeter.

This example deploys a *submodular* configuration: the tower service
areas are known in advance (the query distribution is known, §4.4), so
sensor placement is optimised for exactly those regions — and the
resulting counts are exact for every tower area.

Run:  python examples/cell_tower_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import FrameworkConfig, InNetworkFramework
from repro.geometry import BBox
from repro.mobility import organic_city
from repro.trajectories import WorkloadConfig, generate_workload

N_TOWERS = 6
HOURS = 24


def main() -> None:
    road = organic_city(blocks=250, rng=np.random.default_rng(3))
    framework = InNetworkFramework.from_road_graph(road)
    domain = framework.domain
    bounds = domain.bounds

    # Tower service areas: a 3x2 grid of rectangular cells over the
    # city core (real deployments would use the actual sector maps).
    rng = np.random.default_rng(5)
    towers = {}
    for index in range(N_TOWERS):
        col, row = index % 3, index // 3
        cx = bounds.min_x + bounds.width * (0.22 + 0.28 * col)
        cy = bounds.min_y + bounds.height * (0.3 + 0.4 * row)
        towers[f"tower-{index}"] = BBox.from_center(
            (cx, cy),
            bounds.width * rng.uniform(0.2, 0.3),
            bounds.height * rng.uniform(0.2, 0.3),
        )

    # The query distribution is known: register the service areas as
    # historical query regions, then deploy submodular-selected walls.
    for area in towers.values():
        framework.record_query_region(area)
    network = framework.deploy(
        FrameworkConfig(selector="submodular", budget=400)
    )
    print(f"Submodular deployment: {len(network.sensors)} sensors, "
          f"{len(network.walls)} monitored edges "
          f"({network.size_fraction:.1%} of blocks)\n")

    workload = generate_workload(
        domain,
        WorkloadConfig(n_trips=6000, horizon_days=1.0,
                       mean_dwell=5400.0, seed=17),
    )
    framework.ingest_trips(workload.trips)

    # Hourly load per tower: the operator's dashboard.
    print("Users inside each service area (per 4-hour snapshot)")
    header = "hour  " + "".join(f"{name:>10}" for name in towers)
    print(header)
    print("-" * len(header))
    for hour in range(0, HOURS, 4):
        t = hour * 3600.0
        row = [f"{hour:02d}:00"]
        for name, area in towers.items():
            result = framework.query(area, 0.0, max(t, 1.0))
            row.append(f"{result.value:10.0f}" if not result.missed
                       else f"{'miss':>10}")
        print("  ".join(row))

    # Accuracy check against the exact count at the evening peak.
    print("\nAccuracy at 18:00 (estimate vs exact, sensors contacted)")
    t = 18 * 3600.0
    for name, area in towers.items():
        approx = framework.query(area, 0.0, t)
        exact = framework.query_exact(area, 0.0, t)
        if approx.missed:
            print(f"  {name}: miss")
            continue
        error = (abs(approx.value - exact.value) / exact.value
                 if exact.value else 0.0)
        print(f"  {name}: {approx.value:5.0f} vs {exact.value:5.0f} "
              f"(err {error:5.1%}, {approx.nodes_accessed} sensors vs "
              f"{exact.nodes_accessed} flooded)")


if __name__ == "__main__":
    main()
