"""Differential-privacy budget exploration.

The paper defers formal privacy guarantees to Ghosh et al. [20] but
notes the framework "can be extended ... to include privacy
guarantees".  The library ships that extension as a wrapper: Laplace
noise with scale 1/epsilon on every released per-edge count.  This
example sweeps the privacy budget and shows the resulting
accuracy/privacy trade-off on real queries — small epsilon (strong
privacy) costs accuracy proportionally to the boundary length, since
each boundary edge contributes independent noise.

Run:  python examples/privacy_budget.py
"""

from __future__ import annotations

import numpy as np

from repro.forms import LaplaceNoisyStore
from repro.geometry import BBox
from repro.mobility import MobilityDomain, organic_city
from repro.query import QueryEngine, RangeQuery
from repro.sampling import sampled_network
from repro.selection import KDTreeSelector, SensorCandidates
from repro.trajectories import WorkloadConfig, generate_workload

EPSILONS = (0.1, 0.5, 1.0, 5.0, float("inf"))


def main() -> None:
    domain = MobilityDomain(
        organic_city(blocks=200, rng=np.random.default_rng(21))
    )
    candidates = SensorCandidates.from_domain(domain)
    sensors = KDTreeSelector().select(
        candidates, 60, np.random.default_rng(2)
    )
    network = sampled_network(domain, sensors)
    workload = generate_workload(
        domain,
        WorkloadConfig(n_trips=5000, horizon_days=1.0,
                       mean_dwell=5400.0, seed=8),
    )
    form = network.build_form(workload.events(domain))

    boxes = [
        BBox.from_center(domain.bounds.center, 5.0, 5.0),
        BBox(1.0, 1.0, 6.0, 6.0),
        BBox(4.0, 4.0, 9.5, 9.5),
    ]
    queries = [
        RangeQuery(box, 0.0, hour * 3600.0)
        for box in boxes
        for hour in (9, 13, 18, 21)
    ]

    exact_engine = QueryEngine(network, form)
    exact_values = {}
    for query in queries:
        result = exact_engine.execute(query)
        if not result.missed and result.value > 0:
            exact_values[query] = result.value

    print(f"{len(exact_values)} answerable queries; "
          "mean noisy error per privacy budget:\n")
    print(f"{'epsilon':>10} {'mean rel. error':>16} {'interpretation'}")
    for epsilon in EPSILONS:
        if np.isinf(epsilon):
            print(f"{'inf':>10} {0.0:>16.3f} no noise (baseline)")
            continue
        errors = []
        for seed in range(5):
            store = LaplaceNoisyStore(form, epsilon=epsilon, seed=seed)
            engine = QueryEngine(network, store)
            for query, exact in exact_values.items():
                noisy = engine.execute(query)
                errors.append(abs(noisy.value - exact) / exact)
        label = ("strong privacy" if epsilon < 0.5
                 else "moderate" if epsilon <= 1 else "weak privacy")
        print(f"{epsilon:>10.1f} {np.mean(errors):>16.3f} {label}")

    print("\nEach released count has Laplace(1/epsilon) noise; a query "
          "summing B boundary\nedges accumulates ~sqrt(2B)/epsilon "
          "absolute error, so privacy is cheapest\nfor queries with "
          "short perimeters — another argument for sampling, which\n"
          "shortens perimeters by merging regions.")


if __name__ == "__main__":
    main()
