"""Traffic flow estimation from transient counts (§3.3, application [35]).

The transient object count over a window is the *net* inflow of a
region; combined with snapshot counts it estimates flow intensity per
district over the day — the input a traffic-management system needs —
from nothing but anonymous edge crossings.

This example also demonstrates the learned count store: the same
queries answered from constant-size piecewise-linear models instead of
stored timestamps, with the storage ratio printed.

Run:  python examples/traffic_flow_estimation.py
"""

from __future__ import annotations

import numpy as np

from repro import FrameworkConfig, InNetworkFramework
from repro.geometry import BBox
from repro.mobility import organic_city, voronoi_strata
from repro.trajectories import WorkloadConfig, generate_workload


def main() -> None:
    road = organic_city(blocks=220, rng=np.random.default_rng(9))
    framework = InNetworkFramework.from_road_graph(road)
    domain = framework.domain
    bounds = domain.bounds

    # Districts for reporting (3 corridors across the city).
    districts = {
        "west": BBox(bounds.min_x + 0.5, bounds.min_y + 1.0,
                     bounds.min_x + bounds.width * 0.35, bounds.max_y - 1.0),
        "core": BBox(bounds.min_x + bounds.width * 0.35,
                     bounds.min_y + 1.0,
                     bounds.min_x + bounds.width * 0.65,
                     bounds.max_y - 1.0),
        "east": BBox(bounds.min_x + bounds.width * 0.65,
                     bounds.min_y + 1.0,
                     bounds.max_x - 0.5, bounds.max_y - 1.0),
    }

    budget = max(domain.block_count // 5, 2)
    framework.deploy(
        FrameworkConfig(selector="kdtree", budget=budget, seed=2)
    )

    workload = generate_workload(
        domain,
        WorkloadConfig(n_trips=7000, horizon_days=1.0,
                       mean_dwell=2700.0, hotspot_bias=0.7, seed=23),
    )
    framework.ingest_trips(workload.trips)
    exact_storage = framework.storage_bytes

    print("Net flow per district (objects/hour, + = filling up)")
    print(f"{'window':>12} {'west':>8} {'core':>8} {'east':>8}")
    for start_hour in range(6, 22, 2):
        t1, t2 = start_hour * 3600.0, (start_hour + 2) * 3600.0
        row = [f"{start_hour:02d}-{start_hour + 2:02d}h"]
        for area in districts.values():
            result = framework.query(area, t1, t2, kind="transient")
            rate = result.value / 2.0 if not result.missed else float("nan")
            row.append(f"{rate:8.1f}")
        print(f"{row[0]:>12} {row[1]} {row[2]} {row[3]}")

    # Re-deploy with the learned store: same queries, tiny storage.
    framework.deploy(
        FrameworkConfig(selector="kdtree", budget=budget,
                        store="piecewise", seed=2)
    )
    learned_storage = framework.storage_bytes
    print(f"\nLearned store: {learned_storage} bytes vs "
          f"{exact_storage} bytes exact "
          f"({1 - learned_storage / exact_storage:.2%} reduction)")

    core = districts["core"]
    learned = framework.query(core, 8 * 3600.0, 10 * 3600.0,
                              kind="transient")
    print(f"Morning-rush net inflow into the core (learned store): "
          f"{learned.value:+.0f}")


if __name__ == "__main__":
    main()
