"""Sensor placement planning: comparing selection strategies.

A city planner has budget for sensors on a fraction of city blocks and
wants to know which placement strategy to deploy — and how accuracy
degrades as the budget shrinks.  This example sweeps every selector in
the library over three budgets and prints the resulting accuracy,
communication and coverage characteristics, using the low-level
pipeline API (the benchmarks' machinery) directly.

Run:  python examples/sensor_placement_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import (
    PipelineConfig,
    QueryWorkloadConfig,
    evaluate,
    format_table,
    get_pipeline,
)

BUDGET_FRACTIONS = (0.064, 0.128, 0.256)
SELECTORS = (
    "uniform",
    "systematic",
    "stratified",
    "kdtree",
    "quadtree",
    "submodular",
)


def main() -> None:
    config = PipelineConfig(blocks=400, n_trips=4000, horizon_days=1.0)
    pipeline = get_pipeline(config)
    domain = pipeline.domain
    print(f"Planning domain: {domain.block_count} candidate blocks, "
          f"{domain.junction_count} junctions\n")

    queries = pipeline.standard_queries(0.0864, n=15)

    rows = []
    for fraction in BUDGET_FRACTIONS:
        budget = pipeline.budget_for_fraction(fraction)
        for selector in SELECTORS:
            network = pipeline.network(selector, budget, seed=1)
            engine = pipeline.engine(network)
            report = evaluate(pipeline, engine.execute, queries)
            rows.append(
                [
                    f"{fraction:.1%}",
                    selector,
                    len(network.sensors),
                    len(network.walls),
                    network.region_count,
                    report.error.median,
                    report.miss_rate,
                    report.nodes_accessed.mean,
                ]
            )
    print(
        format_table(
            (
                "budget",
                "selector",
                "sensors",
                "walls",
                "regions",
                "rel.err",
                "miss",
                "nodes/query",
            ),
            rows,
        )
    )

    print(
        "\nReading the table: submodular exploits the known query "
        "workload;\nkd-tree/QuadTree are the strongest oblivious "
        "samplers; every\nstrategy improves as the budget grows "
        "(Figs. 11a/12a of the paper)."
    )


if __name__ == "__main__":
    main()
