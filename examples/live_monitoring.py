"""Live monitoring: standing queries over a streaming sensor network.

Registers standing count queries for three zones, replays the day's
crossing events in order (as a deployed network would receive them) and
prints the live dashboard at intervals — no timestamps are ever stored;
each region's count is maintained incrementally from boundary
crossings.  Finishes with the energy comparison that motivates
in-network processing (§3.1): continuous centralized sync vs local
aggregation.

Run:  python examples/live_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.geometry import BBox
from repro.mobility import MobilityDomain, organic_city
from repro.network import EnergyModel
from repro.query import ContinuousCountMonitor
from repro.sampling import sampled_network
from repro.selection import QuadTreeSelector, SensorCandidates
from repro.trajectories import WorkloadConfig, generate_workload


def main() -> None:
    domain = MobilityDomain(
        organic_city(blocks=220, rng=np.random.default_rng(12))
    )
    candidates = SensorCandidates.from_domain(domain)
    sensors = QuadTreeSelector().select(
        candidates, 55, np.random.default_rng(4)
    )
    network = sampled_network(domain, sensors)
    print(f"Deployed {len(network.sensors)} sensors / "
          f"{len(network.walls)} monitored edges\n")

    bounds = domain.bounds
    monitor = ContinuousCountMonitor(network)
    zones = {
        "downtown": BBox.from_center(bounds.center, 4.5, 4.5),
        "north": BBox(bounds.min_x + 1, bounds.max_y - 4.5,
                      bounds.max_x - 1, bounds.max_y - 0.5),
        "south": BBox(bounds.min_x + 1, bounds.min_y + 0.5,
                      bounds.max_x - 1, bounds.min_y + 4.5),
    }
    for name, box in zones.items():
        try:
            state = monitor.add_region(name, box)
            print(f"standing query '{name}': {len(state.regions)} sensing "
                  f"regions on {monitor.monitored_walls} walls")
        except Exception as error:  # zone too small for this deployment
            print(f"standing query '{name}' rejected: {error}")

    workload = generate_workload(
        domain,
        WorkloadConfig(n_trips=5000, horizon_days=1.0,
                       mean_dwell=3600.0, seed=31),
    )
    events = workload.events(domain)
    print(f"\nReplaying {len(events)} events...\n")

    checkpoints = [h * 3600.0 for h in range(2, 25, 2)]
    next_checkpoint = 0
    print(f"{'time':>6}  " + "".join(f"{n:>10}" for n in monitor.region_names))
    for event in events:
        while (next_checkpoint < len(checkpoints)
               and event.t > checkpoints[next_checkpoint]):
            hour = int(checkpoints[next_checkpoint] // 3600)
            counts = monitor.counts()
            print(f"{hour:>4}h   " + "".join(
                f"{counts[n]:10.0f}" for n in monitor.region_names))
            next_checkpoint += 1
        monitor.observe(event)

    # Energy: why the events stayed in the network.
    model = EnergyModel(network)
    observed = network.observed_events(events)
    central = model.centralized_updates(observed)
    local = model.in_network_updates(observed)
    print(f"\nEnergy for {len(observed)} detected crossings "
          "(arbitrary units):")
    print(f"  centralized continuous sync : {central.total:12.0f}")
    print(f"  in-network local aggregation: {local.total:12.0f}")
    print(f"  saving                      : "
          f"{1 - local.total / central.total:.1%}")


if __name__ == "__main__":
    main()
